package serve

// Gray-failure chaos suite for the serving layer: degraded replicas that
// stay alive but slow, the health scorer that ejects and re-admits them,
// hedged execution that rescues requests stuck behind them, and the retry
// budget that keeps shed load from amplifying into a storm. The precise
// tests run on a VirtualClock (sleep-free, bit-deterministic); the fleet
// tests run on the real scheduler under -race. Every test asserts the
// goroutine-leak check: hedge watchers, ejected replicas, and retry loops
// all spawn goroutines whose exit paths these suites exist to exercise.

import (
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/fault"
	"repro/internal/leakcheck"
)

// waitServed blocks on the pool condition variable until replica r has
// served at least n batches and gone idle — the sleep-free way to order
// placement decisions against completions on a VirtualClock.
func waitServed(srv *Server, r, n int) {
	p := srv.pool
	p.mu.Lock()
	defer p.mu.Unlock()
	for p.nObs[r] < n || p.inflight[r] != 0 {
		p.cond.Wait()
	}
}

// TestGrayDegradedReplicaEjectedThenReadmitted walks the full health-scoring
// life cycle deterministically: a 10x-degraded replica serves MinSamples
// slow batches, gets ejected, traffic routes around it while it sits idle,
// a probe lands after the fault is repaired, and the replica rejoins the
// fleet. Every placement in the script is forced by the tie-break and load
// rules, so the test asserts exact counters, not tendencies.
func TestGrayDegradedReplicaEjectedThenReadmitted(t *testing.T) {
	defer leakcheck.Check(t)()
	vc := NewVirtualClock(time.Unix(0, 0).UTC())
	plan := fault.NewPlan().Degrade(0, 10) // 9ms stall per batch at DegradeUnit 1ms
	srv, err := New(testNet(3), Config{
		InDim:       3,
		Replicas:    2,
		MaxBatch:    1,
		Clock:       vc,
		Faults:      plan,
		DegradeUnit: time.Millisecond,
		Health: HealthConfig{
			EjectFactor: 3,
			MinSamples:  2,
			ProbeEvery:  4,
			MinLatency:  time.Millisecond,
		},
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer srv.Close()
	x := []float64{1, 2, 3}

	// Placement 1: all idle, tie-break to the degraded replica 0. It stalls
	// 9ms on the virtual clock before executing.
	chA := srv.Submit(x, time.Time{})
	vc.BlockUntilWaiters(1)

	// Placements 2-3: replica 0 is busy, so both land on healthy replica 1
	// and finish instantly at the current virtual time (EWMA 0, 2 samples).
	if _, err := srv.Infer(x); err != nil {
		t.Fatalf("Infer B: %v", err)
	}
	waitServed(srv, 1, 1)
	if _, err := srv.Infer(x); err != nil {
		t.Fatalf("Infer C: %v", err)
	}
	waitServed(srv, 1, 2)

	// Release replica 0's first slow batch: one 9ms sample is not enough to
	// eject (MinSamples 2).
	vc.Advance(9 * time.Millisecond)
	if res := <-chA; res.Err != nil {
		t.Fatalf("request A: %v", res.Err)
	}
	waitServed(srv, 0, 1)
	if st := srv.Stats(); st.Ejections != 0 || st.HealthyReplicas != 2 {
		t.Fatalf("ejected on one sample: %+v", st)
	}

	// Placement 4: both idle again, tie-break back to replica 0. The second
	// slow sample crosses MinSamples with EWMA 9ms > 3 x median(0) and
	// > MinLatency: ejection.
	chD := srv.Submit(x, time.Time{})
	vc.BlockUntilWaiters(1)
	vc.Advance(9 * time.Millisecond)
	if res := <-chD; res.Err != nil {
		t.Fatalf("request D: %v", res.Err)
	}
	waitServed(srv, 0, 2)
	if st := srv.Stats(); st.Ejections != 1 || st.HealthyReplicas != 1 {
		t.Fatalf("after two slow samples: %+v, want ejection of replica 0", st)
	}

	// Placements 5-7: replica 0 is ejected, so despite being idle it gets
	// nothing — all three complete instantly on replica 1.
	for i := 0; i < 3; i++ {
		if _, err := srv.Infer(x); err != nil {
			t.Fatalf("Infer past ejected replica: %v", err)
		}
	}
	waitServed(srv, 1, 5)
	if got := srv.pool.nObs[0]; got != 2 {
		t.Fatalf("ejected replica served %d batches, want still 2 (no traffic)", got)
	}

	// Repair the gray fault, then placement 8 = the probe (ProbeEvery 4):
	// it lands on replica 0, comes back fast, and re-admits it.
	plan.Degrade(0, 1)
	if _, err := srv.Infer(x); err != nil {
		t.Fatalf("probe request: %v", err)
	}
	waitServed(srv, 0, 3)
	st := srv.Stats()
	if st.Readmissions != 1 || st.HealthyReplicas != 2 {
		t.Fatalf("after repaired probe: %+v, want re-admission", st)
	}
	if st.Completed != 8 || st.Ejections != 1 {
		t.Fatalf("final stats %+v, want 8 completed, 1 ejection", st)
	}
}

// TestGrayHedgeRescuesWedgedRequest scripts the hedging contract end to end
// on a VirtualClock: a request lands on a replica wedged for an hour, the
// hedge budget (5ms) expires, the duplicate runs on the healthy replica and
// answers at exactly t+5ms, and when the wedged replica finally wakes its
// copy is cancelled before the forward pass — first response wins, the
// loser is cancelled, nothing is double-delivered.
func TestGrayHedgeRescuesWedgedRequest(t *testing.T) {
	defer leakcheck.Check(t)()
	vc := NewVirtualClock(time.Unix(0, 0).UTC())
	srv, err := New(testNet(3), Config{
		InDim:    3,
		Replicas: 2,
		MaxBatch: 1,
		Clock:    vc,
		Faults:   fault.NewPlan().Hang(0, 0, time.Hour), // the gray wedge
		Hedge:    HedgeConfig{After: 5 * time.Millisecond},
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}

	// Tie-break sends the request to wedged replica 0; two timers arm: the
	// hour-long hang and the 5ms hedge watcher.
	ch := srv.Submit([]float64{1, 2, 3}, time.Time{})
	vc.BlockUntilWaiters(2)

	// The hedge budget expires: the duplicate goes to idle replica 1 and
	// answers immediately, 5ms after admission.
	vc.Advance(5 * time.Millisecond)
	res := <-ch
	if res.Err != nil {
		t.Fatalf("hedged request failed: %v", res.Err)
	}
	if res.Latency != 5*time.Millisecond {
		t.Fatalf("latency = %v, want exactly the 5ms hedge budget", res.Latency)
	}

	// The wedged replica wakes an hour later: its copy must be cancelled
	// before paying for a forward pass.
	vc.Advance(time.Hour)
	srv.Close()

	st := srv.Stats()
	if st.Hedged != 1 || st.HedgeCancelled != 1 || st.HedgeWasted != 0 {
		t.Fatalf("hedge accounting %+v, want 1 hedged, 1 cancelled, 0 wasted", st)
	}
	if st.Completed != 1 || st.Expired != 0 {
		t.Fatalf("stats %+v, want exactly one completion", st)
	}
}

// TestChaosGrayFleetHedgesAroundDegradedReplica is the -race hedging fleet
// test: a 20x gray straggler inside a three-replica fleet, hedging past a
// 1ms budget, sixteen concurrent closed-loop clients. All requests must
// succeed, at least one must have been hedged, and the hedge ledger must
// balance. (Health scoring is off here on purpose: hedging rescues stuck
// clients so quickly that the straggler barely accumulates samples, so the
// two defenses are exercised in separate fleet tests.)
func TestChaosGrayFleetHedgesAroundDegradedReplica(t *testing.T) {
	defer leakcheck.Check(t)()
	const (
		clients   = 16
		perClient = 20
		total     = clients * perClient
	)
	srv, err := New(testNet(3), Config{
		InDim:       3,
		Replicas:    3,
		MaxBatch:    4,
		MaxLinger:   200 * time.Microsecond,
		QueueCap:    64,
		Faults:      fault.NewPlan().Degrade(0, 20),
		DegradeUnit: 100 * time.Microsecond, // 1.9ms stall per straggler batch
		Hedge:       HedgeConfig{After: time.Millisecond},
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}

	var wg sync.WaitGroup
	errs := make(chan error, total)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < perClient; i++ {
				if _, err := srv.Infer([]float64{float64(c), float64(i), 1}); err != nil {
					errs <- err
				}
			}
		}(c)
	}
	wg.Wait()
	srv.Close()
	close(errs)
	for err := range errs {
		t.Fatalf("Infer failed under gray chaos: %v", err)
	}

	st := srv.Stats()
	if st.Completed != total {
		t.Fatalf("completed = %d, want %d (hedging must never lose or double-count)", st.Completed, total)
	}
	if st.Hedged < 1 {
		t.Fatal("no request was hedged despite a 1.9ms straggler and a 1ms budget")
	}
	if st.HedgeCancelled+st.HedgeWasted > st.Hedged {
		t.Fatalf("hedge ledger unbalanced: %d cancelled + %d wasted > %d hedged",
			st.HedgeCancelled, st.HedgeWasted, st.Hedged)
	}
}

// TestChaosGrayFleetEjectsStraggler is the -race health-scoring fleet test:
// the same 20x straggler, no hedging, so closed-loop clients genuinely wait
// out its slow batches and the scorer sees sample after slow sample. The
// straggler must be ejected and the fleet must finish every request.
func TestChaosGrayFleetEjectsStraggler(t *testing.T) {
	defer leakcheck.Check(t)()
	const (
		clients   = 16
		perClient = 20
		total     = clients * perClient
	)
	srv, err := New(testNet(3), Config{
		InDim:       3,
		Replicas:    3,
		MaxBatch:    4,
		MaxLinger:   200 * time.Microsecond,
		QueueCap:    64,
		Faults:      fault.NewPlan().Degrade(0, 20),
		DegradeUnit: 100 * time.Microsecond,
		Health: HealthConfig{
			EjectFactor: 3,
			MinSamples:  3,
			ProbeEvery:  1 << 20, // effectively no probes: ejection stays sticky
			MinLatency:  200 * time.Microsecond,
		},
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}

	var wg sync.WaitGroup
	errs := make(chan error, total)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < perClient; i++ {
				if _, err := srv.Infer([]float64{float64(c), float64(i), 1}); err != nil {
					errs <- err
				}
			}
		}(c)
	}
	wg.Wait()
	srv.Close()
	close(errs)
	for err := range errs {
		t.Fatalf("Infer failed under gray chaos: %v", err)
	}

	st := srv.Stats()
	if st.Completed != total {
		t.Fatalf("completed = %d, want %d", st.Completed, total)
	}
	if st.Ejections < 1 {
		t.Fatalf("straggler never ejected: %+v", st)
	}
	if st.HealthyReplicas < 1 {
		t.Fatalf("health scoring ejected everyone: %+v", st)
	}
}

// TestChaosRetryBudgetBoundsAmplification wedges a single-replica server
// into a brownout (20ms per batch, one-deep queues) and slams it with
// concurrent budgeted retriers. The token bucket must enforce the
// amplification bound attempts <= N + burst + ratio*successes no matter the
// interleaving, and must start denying retries once the budget drains —
// bounded shed load instead of a retry storm.
func TestChaosRetryBudgetBoundsAmplification(t *testing.T) {
	defer leakcheck.Check(t)()
	srv, err := New(testNet(3), Config{
		InDim:             3,
		Replicas:          1,
		MaxBatch:          1,
		MaxLinger:         100 * time.Microsecond,
		QueueCap:          1,
		MaxPendingBatches: 1,
		Faults:            fault.NewPlan().Degrade(0, 21),
		DegradeUnit:       time.Millisecond, // 20ms per batch: a brownout
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	pol := RetryPolicy{
		MaxAttempts: 3,
		BaseBackoff: 50 * time.Microsecond,
		MaxBackoff:  200 * time.Microsecond,
		BudgetRatio: 0.1,
		BudgetBurst: 3,
	}
	rt := NewRetrier(srv, pol, 99)

	const (
		goroutines = 32
		each       = 4
		total      = goroutines * each
	)
	results := make(chan Result, total)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				results <- rt.Do([]float64{float64(g), float64(i), 0}, time.Time{})
			}
		}(g)
	}
	wg.Wait()
	srv.Close()
	close(results)

	var ok, shed int64
	for res := range results {
		switch {
		case res.Err == nil:
			ok++
		case errors.Is(res.Err, ErrOverloaded):
			shed++
		default:
			t.Fatalf("unexpected error: %v", res.Err)
		}
	}
	if ok+shed != total {
		t.Fatalf("ok(%d)+shed(%d) != %d", ok, shed, total)
	}
	if ok == 0 || shed == 0 {
		t.Fatalf("brownout not exercised: ok=%d shed=%d (need both outcomes)", ok, shed)
	}

	rs := rt.Stats()
	bound := float64(total) + pol.BudgetBurst + pol.BudgetRatio*float64(ok)
	if float64(rs.Attempts) > bound {
		t.Fatalf("retry amplification unbounded: %d attempts > %d requests + burst %g + ratio*ok %g",
			rs.Attempts, total, pol.BudgetBurst, pol.BudgetRatio*float64(ok))
	}
	if rs.Attempts != int64(total)+rs.Retries {
		t.Fatalf("attempt accounting broken: %d attempts, %d requests, %d retries",
			rs.Attempts, total, rs.Retries)
	}
	if float64(rs.Retries) > pol.BudgetBurst+pol.BudgetRatio*float64(ok) {
		t.Fatalf("retries %d exceed the token supply %g", rs.Retries,
			pol.BudgetBurst+pol.BudgetRatio*float64(ok))
	}
	if rs.Denied == 0 {
		t.Fatal("budget never denied a retry during a sustained brownout")
	}
}
