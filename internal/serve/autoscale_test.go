package serve

import (
	"testing"
	"time"
)

func mustScaler(t *testing.T, cfg AutoscaleConfig) *Autoscaler {
	t.Helper()
	a, err := NewAutoscaler(cfg)
	if err != nil {
		t.Fatalf("NewAutoscaler: %v", err)
	}
	return a
}

func TestAutoscaleConfigValidation(t *testing.T) {
	if _, err := NewAutoscaler(AutoscaleConfig{Min: 4, Max: 2}); err == nil {
		t.Error("Max < Min accepted")
	}
	if _, err := NewAutoscaler(AutoscaleConfig{QueueHigh: 1, QueueLow: 2}); err == nil {
		t.Error("QueueLow >= QueueHigh accepted")
	}
	if _, err := NewAutoscaler(AutoscaleConfig{P99High: -time.Second}); err == nil {
		t.Error("negative P99High accepted")
	}
	a := mustScaler(t, AutoscaleConfig{})
	cfg := a.Config()
	if cfg.Min != 1 || cfg.Max != 16 || cfg.QueueHigh != 4 || cfg.SurgeMax != 2 ||
		cfg.UpCooldown != cfg.Every || cfg.DownCooldown != 4*cfg.Every {
		t.Fatalf("defaults wrong: %+v", cfg)
	}
}

// TestAutoscaleQueueTriggerStepsProportionally: the up step is sized to the
// queue overhang but capped by SurgeMax, and clamped to Max.
func TestAutoscaleQueueTriggerStepsProportionally(t *testing.T) {
	a := mustScaler(t, AutoscaleConfig{Min: 1, Max: 4, QueueHigh: 4, SurgeMax: 2})

	// Queue 40 against 1 healthy replica wants 40/4+1 = 11 replicas, but
	// SurgeMax caps the step at +2.
	if got := a.Evaluate(0, AutoscaleInput{Queue: 40, Busy: 1, Replicas: 1, Healthy: 1}); got != 3 {
		t.Fatalf("surge step target = %d, want 3 (1 + SurgeMax)", got)
	}
	// Next evaluation after the cooldown: still hot, +2 would exceed Max=4.
	if got := a.Evaluate(1, AutoscaleInput{Queue: 40, Busy: 3, Replicas: 3, Healthy: 3}); got != 4 {
		t.Fatalf("clamped target = %d, want Max 4", got)
	}
	// At Max and still hot: no change possible.
	if got := a.Evaluate(2, AutoscaleInput{Queue: 40, Busy: 4, Replicas: 4, Healthy: 4}); got != 4 {
		t.Fatalf("target above Max: %d", got)
	}
	// Mild overhang takes a single step, not the surge cap.
	b := mustScaler(t, AutoscaleConfig{Min: 1, Max: 8, QueueHigh: 4, SurgeMax: 4})
	if got := b.Evaluate(0, AutoscaleInput{Queue: 5, Busy: 1, Replicas: 1, Healthy: 1}); got != 2 {
		t.Fatalf("mild overhang target = %d, want 2", got)
	}
	ev := b.Events()
	if len(ev) != 1 || ev[0].Reason != "queue" || ev[0].From != 1 || ev[0].To != 2 {
		t.Fatalf("event = %+v, want queue 1->2", ev)
	}
}

// TestAutoscaleP99Trigger: a comfortable queue with a breached latency SLO
// still scales up, tagged with the p99 reason.
func TestAutoscaleP99Trigger(t *testing.T) {
	a := mustScaler(t, AutoscaleConfig{Min: 1, Max: 8, P99High: 50 * time.Millisecond})
	got := a.Evaluate(0, AutoscaleInput{
		Queue: 0, P99: 80 * time.Millisecond, Busy: 1, Replicas: 2, Healthy: 2,
	})
	if got != 3 {
		t.Fatalf("p99 trigger target = %d, want 3", got)
	}
	ev := a.Events()
	if len(ev) != 1 || ev[0].Reason != "p99" {
		t.Fatalf("event = %+v, want reason p99", ev)
	}
	// P99High zero disables the trigger entirely.
	b := mustScaler(t, AutoscaleConfig{Min: 1, Max: 8})
	if got := b.Evaluate(0, AutoscaleInput{Queue: 0, P99: time.Hour, Busy: 1, Replicas: 2, Healthy: 2}); got != 2 {
		t.Fatalf("disabled p99 trigger scaled to %d", got)
	}
}

// TestAutoscaleUpCooldownGates: consecutive hot evaluations inside the up
// cooldown must not stack scale-ups.
func TestAutoscaleUpCooldownGates(t *testing.T) {
	a := mustScaler(t, AutoscaleConfig{
		Min: 1, Max: 8, QueueHigh: 2, SurgeMax: 1, UpCooldown: time.Second,
	})
	hot := AutoscaleInput{Queue: 20, Busy: 1, Replicas: 1, Healthy: 1}
	if got := a.Evaluate(0, hot); got != 2 {
		t.Fatalf("first up target = %d, want 2", got)
	}
	hot.Replicas, hot.Healthy = 2, 2
	if got := a.Evaluate(0.5, hot); got != 2 {
		t.Fatalf("inside cooldown target = %d, want unchanged 2", got)
	}
	if got := a.Evaluate(1.5, hot); got != 3 {
		t.Fatalf("after cooldown target = %d, want 3", got)
	}
	if ups, _ := a.Counts(); ups != 2 {
		t.Fatalf("ups = %d, want 2", ups)
	}
}

// TestAutoscaleDownRequiresIdleAndCooldowns: scale-down is one replica at a
// time, gated on empty queue, low utilisation EWMA, healthy latency, its own
// cooldown, and Min.
func TestAutoscaleDownRequiresIdleAndCooldowns(t *testing.T) {
	cfg := AutoscaleConfig{
		Min: 1, Max: 8, QueueHigh: 4, QueueLow: 0.5,
		UtilLow: 0.3, UtilAlpha: 1, // EWMA tracks the instant value
		P99High:      50 * time.Millisecond,
		DownCooldown: 2 * time.Second,
	}
	idle := AutoscaleInput{Queue: 0, Busy: 0, Replicas: 4, Healthy: 4}

	a := mustScaler(t, cfg)
	if got := a.Evaluate(0, idle); got != 3 {
		t.Fatalf("idle pool target = %d, want 3", got)
	}
	ev := a.Events()
	if len(ev) != 1 || ev[0].Reason != "idle" {
		t.Fatalf("event = %+v, want reason idle", ev)
	}
	// Inside the down cooldown: no further shrink.
	idle.Replicas, idle.Healthy = 3, 3
	if got := a.Evaluate(1, idle); got != 3 {
		t.Fatalf("inside down cooldown target = %d, want 3", got)
	}
	if got := a.Evaluate(2.5, idle); got != 2 {
		t.Fatalf("after down cooldown target = %d, want 2", got)
	}

	// High utilisation blocks the shrink even with an empty queue.
	b := mustScaler(t, cfg)
	if got := b.Evaluate(0, AutoscaleInput{Queue: 0, Busy: 4, Replicas: 4, Healthy: 4}); got != 4 {
		t.Fatalf("busy pool shrank to %d", got)
	}
	// A slow p99 doesn't just block the shrink — an idle-looking pool that
	// is breaching its latency SLO scales up.
	c := mustScaler(t, cfg)
	if got := c.Evaluate(0, AutoscaleInput{Queue: 0, Busy: 0, P99: time.Second, Replicas: 4, Healthy: 4}); got != 5 {
		t.Fatalf("slow pool target = %d, want 5 (p99 breach wins over idleness)", got)
	}
	// Min floor.
	d := mustScaler(t, cfg)
	if got := d.Evaluate(0, AutoscaleInput{Queue: 0, Busy: 0, Replicas: 1, Healthy: 1}); got != 1 {
		t.Fatalf("pool shrank below Min to %d", got)
	}
}

// TestAutoscaleNeverSaws: a recent scale-up vetoes a scale-down for a full
// DownCooldown, so up→down→up oscillation across consecutive evaluations is
// impossible by construction.
func TestAutoscaleNeverSaws(t *testing.T) {
	a := mustScaler(t, AutoscaleConfig{
		Min: 1, Max: 8, QueueHigh: 2, QueueLow: 0.5,
		UtilLow: 0.5, UtilAlpha: 1,
		UpCooldown: 100 * time.Millisecond, DownCooldown: 2 * time.Second,
	})
	// Burst: scale up at t=0.
	if got := a.Evaluate(0, AutoscaleInput{Queue: 20, Busy: 1, Replicas: 1, Healthy: 1}); got <= 1 {
		t.Fatalf("burst did not scale up (target %d)", got)
	}
	// Burst gone immediately after: an idle snapshot inside DownCooldown of
	// the up must NOT shrink.
	for _, tm := range []float64{0.25, 0.5, 1.0, 1.9} {
		if got := a.Evaluate(tm, AutoscaleInput{Queue: 0, Busy: 0, Replicas: 3, Healthy: 3}); got != 3 {
			t.Fatalf("t=%g: shrank to %d within DownCooldown of an up", tm, got)
		}
	}
	// Once the veto lapses the shrink proceeds.
	if got := a.Evaluate(2.5, AutoscaleInput{Queue: 0, Busy: 0, Replicas: 3, Healthy: 3}); got != 2 {
		t.Fatalf("t=2.5: target = %d, want 2", got)
	}
}

// TestAutoscaleUsesHealthyDenominator: queue pressure is measured per
// *healthy* replica — a pool of 4 with 3 ejected is as overloaded as a pool
// of 1.
func TestAutoscaleUsesHealthyDenominator(t *testing.T) {
	a := mustScaler(t, AutoscaleConfig{Min: 1, Max: 8, QueueHigh: 4, SurgeMax: 8})
	// Queue 6 over 4 healthy = 1.5 per replica: calm.
	if got := a.Evaluate(0, AutoscaleInput{Queue: 6, Busy: 2, Replicas: 4, Healthy: 4}); got != 4 {
		t.Fatalf("calm pool target = %d, want 4", got)
	}
	// Same queue with 1 healthy = 6 per replica: hot.
	b := mustScaler(t, AutoscaleConfig{Min: 1, Max: 8, QueueHigh: 4, SurgeMax: 8})
	if got := b.Evaluate(0, AutoscaleInput{Queue: 6, Busy: 1, Replicas: 4, Healthy: 1}); got <= 4 {
		t.Fatalf("degraded pool target = %d, want > 4", got)
	}
}
