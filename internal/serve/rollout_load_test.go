package serve

import (
	"bytes"
	"encoding/json"
	"testing"
	"time"

	"repro/internal/fault"
	"repro/internal/obs"
)

// rolloutLoadCfg is a 2s open-loop run with a mid-run deploy of a candidate
// carrying the given version fault.
func rolloutLoadCfg(seed uint64, cand fault.VersionFault) LoadConfig {
	return LoadConfig{
		Requests:   4000,
		RatePerSec: 2000,
		Replicas:   2,
		MaxBatch:   8,
		MaxLinger:  2 * time.Millisecond,
		QueueCap:   64,
		Seed:       seed,
		CtrlTick:   100 * time.Millisecond,
		Rollout: &RolloutSim{
			DeployAt:  200 * time.Millisecond,
			Candidate: cand,
			Config: RolloutConfig{
				Stages: []RolloutStage{
					{Fraction: 0.05, Hold: 150 * time.Millisecond},
					{Fraction: 0.25, Hold: 150 * time.Millisecond},
					{Fraction: 1.00, Hold: 150 * time.Millisecond},
				},
				Shadow:     150 * time.Millisecond,
				Rules:      obs.ScaledBurnRules(time.Second),
				DrainGrace: 100 * time.Millisecond,
			},
		},
	}
}

// TestSimRolloutHealthyDeployPromotes: a clean candidate shadows, walks the
// canary stages, and ends promoted with zero wrong answers.
func TestSimRolloutHealthyDeployPromotes(t *testing.T) {
	rep, err := RunLoad(rolloutLoadCfg(7, fault.VersionFault{}))
	if err != nil {
		t.Fatalf("RunLoad: %v", err)
	}
	if rep.RolloutState != "promoted" {
		t.Fatalf("rollout state = %q, want promoted (events: %+v)", rep.RolloutState, rep.RolloutEvents)
	}
	if rep.ShadowServed == 0 {
		t.Fatal("no shadow traffic during the shadow phase")
	}
	if rep.ShadowMismatches != 0 || rep.CanaryErrors != 0 || rep.Errors != 0 {
		t.Fatalf("healthy candidate produced errors: mismatches=%d canaryErrs=%d errs=%d",
			rep.ShadowMismatches, rep.CanaryErrors, rep.Errors)
	}
	if rep.CanaryServed == 0 {
		t.Fatal("no live canary traffic served")
	}
	if rep.TimeToDetectS != 0 || rep.TimeToRollbackS != 0 {
		t.Fatalf("healthy deploy recorded detection/rollback times: %g/%g",
			rep.TimeToDetectS, rep.TimeToRollbackS)
	}
	// Promotion routes everything to the candidate: the majority of traffic
	// after the final stage is canary-served.
	if rep.BadVersionPct < 20 {
		t.Fatalf("BadVersionPct = %.1f after full promotion, want a substantial share", rep.BadVersionPct)
	}
}

// TestSimRolloutBadDeployShadowCatchesBeforeLiveTraffic: with a shadow
// phase, a candidate with a 50% error rate burns its budget on duplicated
// traffic and is rolled back before a single live request routes to it.
func TestSimRolloutBadDeployShadowCatchesBeforeLiveTraffic(t *testing.T) {
	rep, err := RunLoad(rolloutLoadCfg(7, fault.VersionFault{ErrorRate: 0.5}))
	if err != nil {
		t.Fatalf("RunLoad: %v", err)
	}
	if rep.RolloutState != "rolled_back" {
		t.Fatalf("rollout state = %q, want rolled_back (events: %+v)", rep.RolloutState, rep.RolloutEvents)
	}
	if rep.ShadowServed == 0 || rep.ShadowMismatches == 0 {
		t.Fatalf("shadow=%d mismatches=%d, want the shadow traffic to expose the fault",
			rep.ShadowServed, rep.ShadowMismatches)
	}
	if rep.CanaryServed != 0 || rep.BadVersionPct != 0 {
		t.Fatalf("canary=%d pct=%.2f, want zero live exposure when the shadow phase catches it",
			rep.CanaryServed, rep.BadVersionPct)
	}
	if rep.TimeToDetectS <= 0 || rep.TimeToDetectS > 1 {
		t.Fatalf("TimeToDetectS = %g, want sub-second detection", rep.TimeToDetectS)
	}
}

// TestSimRolloutBadDeployRollsBackBounded: without a shadow phase the bad
// candidate does take live traffic, but the early canary stage plus the
// burn-rate page bound its blast radius to a few percent of all requests.
func TestSimRolloutBadDeployRollsBackBounded(t *testing.T) {
	cfg := rolloutLoadCfg(7, fault.VersionFault{ErrorRate: 0.5})
	cfg.Rollout.Config.Shadow = 0
	rep, err := RunLoad(cfg)
	if err != nil {
		t.Fatalf("RunLoad: %v", err)
	}
	if rep.RolloutState != "rolled_back" {
		t.Fatalf("rollout state = %q, want rolled_back (events: %+v)", rep.RolloutState, rep.RolloutEvents)
	}
	if rep.TimeToDetectS <= 0 || rep.TimeToDetectS > 1 {
		t.Fatalf("TimeToDetectS = %g, want sub-second detection", rep.TimeToDetectS)
	}
	if rep.TimeToRollbackS <= 0 {
		t.Fatalf("TimeToRollbackS = %g, want > 0", rep.TimeToRollbackS)
	}
	// The canary stage caps exposure: the bad version saw live traffic, but
	// only a small slice of the run.
	if rep.BadVersionPct <= 0 || rep.BadVersionPct > 5 {
		t.Fatalf("BadVersionPct = %.2f, want in (0, 5] — canary did not bound the blast radius",
			rep.BadVersionPct)
	}
	if rep.CanaryErrors == 0 {
		t.Fatal("bad candidate served live traffic without a single recorded error")
	}
	var sawPage, sawRollback bool
	for _, ev := range rep.RolloutEvents {
		sawPage = sawPage || ev.Event == "page"
		sawRollback = sawRollback || ev.Event == "rolled_back"
	}
	if !sawPage || !sawRollback {
		t.Fatalf("timeline missing page/rolled_back: %+v", rep.RolloutEvents)
	}
}

// flashCrowdCfg is a three-phase profile: calm, a 6x flash crowd, calm.
func flashCrowdCfg(seed uint64, auto *AutoscaleConfig) LoadConfig {
	return LoadConfig{
		Phases: []LoadPhase{
			{Duration: 400 * time.Millisecond, RatePerSec: 500},
			{Duration: 400 * time.Millisecond, RatePerSec: 3000},
			{Duration: 800 * time.Millisecond, RatePerSec: 500},
		},
		Replicas:  1,
		MaxBatch:  8,
		MaxLinger: 2 * time.Millisecond,
		QueueCap:  64,
		Deadline:  50 * time.Millisecond,
		Seed:      seed,
		CtrlTick:  100 * time.Millisecond,
		Autoscale: auto,
	}
}

// TestSimAutoscaleAbsorbsFlashCrowd: the same flash crowd that forces a
// fixed single-replica pool to shed/expire is absorbed by the autoscaler,
// which then returns the fleet toward Min when the crowd leaves.
func TestSimAutoscaleAbsorbsFlashCrowd(t *testing.T) {
	fixed, err := RunLoad(flashCrowdCfg(11, nil))
	if err != nil {
		t.Fatalf("fixed RunLoad: %v", err)
	}
	scaled, err := RunLoad(flashCrowdCfg(11, &AutoscaleConfig{
		Min: 1, Max: 8,
		Every:     100 * time.Millisecond,
		QueueHigh: 4, QueueLow: 0.5,
		SurgeMax: 2,
	}))
	if err != nil {
		t.Fatalf("autoscaled RunLoad: %v", err)
	}

	fixedLost := fixed.Shed + fixed.Expired
	scaledLost := scaled.Shed + scaled.Expired
	if fixedLost == 0 {
		t.Fatalf("flash crowd did not stress the fixed pool (lost=0); test profile too gentle")
	}
	if scaledLost >= fixedLost {
		t.Fatalf("autoscaler lost %d requests vs fixed pool's %d — scaling did not help",
			scaledLost, fixedLost)
	}
	if scaled.ReplicasPeak <= 1 || scaled.ScaleUps < 1 {
		t.Fatalf("peak=%d ups=%d, want the crowd to force a scale-up", scaled.ReplicasPeak, scaled.ScaleUps)
	}
	if scaled.ScaleDowns < 1 || scaled.ReplicasFinal >= scaled.ReplicasPeak {
		t.Fatalf("downs=%d final=%d peak=%d, want the fleet to shrink after the crowd",
			scaled.ScaleDowns, scaled.ReplicasFinal, scaled.ReplicasPeak)
	}
	if scaled.ReplicasMean >= float64(scaled.ReplicasPeak) {
		t.Fatalf("mean=%g peak=%d, want time-weighted mean below peak", scaled.ReplicasMean, scaled.ReplicasPeak)
	}
}

// TestSimCacheSkewDrivesHitRate: a hot-headed key distribution against a
// small result cache yields a healthy hit rate, and hits+misses account for
// every admitted request; a uniform distribution over many more keys hits
// less.
func TestSimCacheSkewDrivesHitRate(t *testing.T) {
	base := LoadConfig{
		Requests:   3000,
		RatePerSec: 2000,
		Replicas:   2,
		MaxBatch:   8,
		MaxLinger:  2 * time.Millisecond,
		QueueCap:   64,
		Seed:       5,
	}
	hot := base
	hot.Cache = &CacheSimConfig{CapacityEntries: 128, TTL: time.Second, Keys: 64, Skew: 2}
	hotRep, err := RunLoad(hot)
	if err != nil {
		t.Fatalf("hot RunLoad: %v", err)
	}
	if hotRep.CacheHits == 0 || hotRep.CacheHitRate <= 0 {
		t.Fatalf("hot workload never hit the cache: %+v", hotRep)
	}
	if hotRep.CacheHitRate >= 1 {
		t.Fatalf("hit rate %g ≥ 1", hotRep.CacheHitRate)
	}

	cold := base
	cold.Cache = &CacheSimConfig{CapacityEntries: 16, TTL: 100 * time.Millisecond, Keys: 4096}
	coldRep, err := RunLoad(cold)
	if err != nil {
		t.Fatalf("cold RunLoad: %v", err)
	}
	if coldRep.CacheHitRate >= hotRep.CacheHitRate {
		t.Fatalf("cold hit rate %g ≥ hot hit rate %g — skew/capacity have no effect",
			coldRep.CacheHitRate, hotRep.CacheHitRate)
	}
}

// TestSimControlPlaneDeterminism: the full control-plane stack (rollout +
// autoscaler + cache) is a pure function of its config — identical seeds
// give byte-identical reports, different seeds differ.
func TestSimControlPlaneDeterminism(t *testing.T) {
	cfg := func(seed uint64) LoadConfig {
		c := rolloutLoadCfg(seed, fault.VersionFault{ErrorRate: 0.3})
		c.Autoscale = &AutoscaleConfig{Min: 1, Max: 4, Every: 100 * time.Millisecond}
		c.Cache = &CacheSimConfig{CapacityEntries: 64, TTL: 500 * time.Millisecond, Keys: 32, Skew: 1}
		return c
	}
	a, err := RunLoad(cfg(3))
	if err != nil {
		t.Fatalf("run a: %v", err)
	}
	b, err := RunLoad(cfg(3))
	if err != nil {
		t.Fatalf("run b: %v", err)
	}
	ja, _ := json.Marshal(a)
	jb, _ := json.Marshal(b)
	if !bytes.Equal(ja, jb) {
		t.Fatalf("same seed, different reports:\n%s\n%s", ja, jb)
	}
	c, err := RunLoad(cfg(4))
	if err != nil {
		t.Fatalf("run c: %v", err)
	}
	jc, _ := json.Marshal(c)
	if bytes.Equal(ja, jc) {
		t.Fatal("different seeds produced identical reports — seed is not wired through")
	}
}
