package serve

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/nn"
	"repro/internal/obs"
	"repro/internal/tensor"
)

// replicaTIDBase offsets replica span tracks away from trainer ranks and
// the hedge flow track in a merged Chrome trace.
const replicaTIDBase = 2000

// batch is one formed tensor batch travelling from the batcher to a replica.
// ver selects the model version every request in the batch executes against
// (batches never mix versions).
type batch struct {
	reqs []*request
	ver  int
}

// pool runs the model replicas. Each replica is a goroutine owning one
// nn.Net clone and one FIFO work queue; the batcher pushes to the least
// loaded live replica, and an idle replica steals from the back of the
// longest queue. A single mutex guards all queues — batches arrive at
// micro-batch granularity, so queue operations are far off the hot path
// compared to the forward passes they schedule.
//
// The pool is sized at capacity slots (Replicas, or Autoscale.Max when the
// autoscaler is on) but only spawns goroutines for the live ones: resize
// spawns into free slots and retires the highest live slot, so the control
// loop grows and shrinks the fleet without restarting it. A rollout adds a
// second net per replica (candNets) that candidate-version batches execute
// against.
type pool struct {
	s        *Server
	capacity int
	base     *nn.Net // master baseline weights; each spawn clones it
	cand     *nn.Net // master candidate weights (nil before any Deploy)
	nets     []*nn.Net
	candNets []*nn.Net

	mu       sync.Mutex
	cond     *sync.Cond
	queues   [][]*batch
	inflight []int // 0 or 1 per replica, counted in the load metric
	live     []bool
	running  []bool // goroutine alive (lags live while a retiree drains)
	dead     []bool // killed by the fault plan; the slot is never reused
	retiring []bool // told to exit; cleared when the goroutine is gone
	nLive    int
	pending  int // formed-but-unstarted batches across all queues
	closed   bool

	// health-scoring state (see health.go; active only when cfg.Health is)
	ewma     []float64 // per-replica service-time EWMA, seconds
	nObs     []int     // batches served per replica
	ejected  []bool
	nEjected int
	places   int // placement counter driving the probe cadence

	kills        int64
	requeued     int64
	steals       int64
	ejections    int64
	readmissions int64

	wg sync.WaitGroup
}

func newPool(s *Server, net *nn.Net) *pool {
	capacity := s.cfg.Replicas
	if s.cfg.Autoscale != nil && s.cfg.Autoscale.Max > capacity {
		capacity = s.cfg.Autoscale.Max
	}
	p := &pool{
		s:        s,
		capacity: capacity,
		base:     net.Clone(),
		nets:     make([]*nn.Net, capacity),
		candNets: make([]*nn.Net, capacity),
		queues:   make([][]*batch, capacity),
		inflight: make([]int, capacity),
		live:     make([]bool, capacity),
		running:  make([]bool, capacity),
		dead:     make([]bool, capacity),
		retiring: make([]bool, capacity),
		ewma:     make([]float64, capacity),
		nObs:     make([]int, capacity),
		ejected:  make([]bool, capacity),
	}
	p.cond = sync.NewCond(&p.mu)
	start := s.cfg.Replicas
	if s.cfg.Autoscale != nil {
		if start < s.cfg.Autoscale.Min {
			start = s.cfg.Autoscale.Min
		}
		if start > s.cfg.Autoscale.Max {
			start = s.cfg.Autoscale.Max
		}
	}
	p.mu.Lock()
	for r := 0; r < start; r++ {
		p.spawnLocked(r)
	}
	p.mu.Unlock()
	return p
}

// spawnLocked brings slot r to life: fresh clones of the master weights,
// reset health state, and a new replica goroutine. Caller holds p.mu.
func (p *pool) spawnLocked(r int) {
	p.live[r] = true
	p.running[r] = true
	p.retiring[r] = false
	p.nLive++
	p.nets[r] = p.base.Clone()
	if p.cand != nil {
		p.candNets[r] = p.cand.Clone()
	}
	p.ewma[r] = 0
	p.nObs[r] = 0
	if p.ejected[r] {
		p.ejected[r] = false
		p.nEjected--
	}
	p.wg.Add(1)
	go func() {
		defer func() {
			p.mu.Lock()
			p.running[r] = false
			p.retiring[r] = false
			p.cond.Broadcast()
			p.mu.Unlock()
			p.wg.Done()
		}()
		p.replica(r)
	}()
}

// retireLocked tells the highest-numbered live slot to exit after its current
// batch and re-homes its queued backlog onto the survivors. Caller holds p.mu
// and guarantees at least one replica stays live.
func (p *pool) retireLocked(r int) {
	p.retiring[r] = true
	p.live[r] = false
	p.nLive--
	if p.ejected[r] {
		p.ejected[r] = false
		p.nEjected--
	}
	backlog := p.queues[r]
	p.queues[r] = nil
	p.pending -= len(backlog) // enqueueLocked below re-counts them
	for _, b := range backlog {
		p.enqueueLocked(b)
	}
}

// resize moves the live-replica count toward target (clamped to [1,
// capacity]), spawning into free slots and retiring from the top. A slot
// whose retired goroutine has not yet exited is skipped this round — the
// next control tick retries. Returns the applied delta.
func (p *pool) resize(target int) int {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return 0
	}
	if target < 1 {
		target = 1
	}
	if target > p.capacity {
		target = p.capacity
	}
	delta := 0
	for p.nLive < target {
		slot := -1
		for r := 0; r < p.capacity; r++ {
			if !p.live[r] && !p.dead[r] && !p.running[r] && !p.retiring[r] {
				slot = r
				break
			}
		}
		if slot < 0 {
			break // every free slot is dead or still draining; retry next tick
		}
		p.spawnLocked(slot)
		delta++
	}
	for p.nLive > target && p.nLive > 1 {
		slot := -1
		for r := p.capacity - 1; r >= 0; r-- {
			if p.live[r] {
				slot = r
				break
			}
		}
		if slot < 0 {
			break
		}
		p.retireLocked(slot)
		delta--
	}
	if delta != 0 {
		p.cond.Broadcast()
		if p.s.obs.Enabled() {
			p.s.obs.SetGauge("serve.live_replicas", float64(p.nLive))
		}
	}
	return delta
}

// installCandidate stages candidate weights for a rollout: one clone per
// live replica plus a master for replicas spawned later.
func (p *pool) installCandidate(cand *nn.Net) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.cand = cand.Clone()
	for r := range p.candNets {
		if p.live[r] {
			p.candNets[r] = p.cand.Clone()
		}
	}
}

// netFor returns the net replica r must run for a batch of version ver.
func (p *pool) netFor(r, ver int) *nn.Net {
	p.mu.Lock()
	defer p.mu.Unlock()
	if ver == VersionCandidate && p.candNets[r] != nil {
		return p.candNets[r]
	}
	return p.nets[r]
}

// loadSnapshot is the control loop's one-lock observation of the pool.
func (p *pool) loadSnapshot() (pending, busy, live, healthy int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.pending, p.inflightTotalLocked(), p.nLive, p.healthyLocked()
}

// push hands one batch to the least loaded live replica, blocking while the
// pool backlog is at MaxPendingBatches. That block is the backpressure
// chain's middle link: the batcher stalls here, the admission queue fills
// behind the batcher, and Submit starts shedding.
func (p *pool) push(b *batch) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for p.pending >= p.s.cfg.MaxPendingBatches && !p.closed {
		p.cond.Wait()
	}
	if p.nLive == 0 || p.closed {
		// done channels are buffered, so failing under the lock is safe.
		for _, r := range b.reqs {
			p.s.fail(r, ErrClosed)
		}
		return
	}
	p.enqueueLocked(b)
	p.cond.Broadcast()
}

// enqueueLocked appends b to the chosen replica's queue: the least loaded
// live replica (load = queued batches + in-flight batch; ties go to the
// lowest id), filtered and probed by health scoring when it is enabled
// (pickReplicaLocked in health.go).
func (p *pool) enqueueLocked(b *batch) {
	best := p.pickReplicaLocked()
	p.queues[best] = append(p.queues[best], b)
	p.pending++
	if p.s.obs.Enabled() {
		p.s.obs.SetGauge("serve.pool_backlog", float64(p.pending))
	}
}

// takeLocked returns work for replica r: the front of its own queue, or —
// when idle — a batch stolen from the back of the longest other live queue.
func (p *pool) takeLocked(r int) (b *batch, stolen bool) {
	if q := p.queues[r]; len(q) > 0 {
		b = q[0]
		p.queues[r] = q[1:]
	} else if p.ejected[r] {
		// An ejected replica serves only what the prober routes to it;
		// letting it steal would route traffic around its own ejection.
	} else if v := p.victimLocked(r); v >= 0 {
		q := p.queues[v]
		b = q[len(q)-1]
		p.queues[v] = q[:len(q)-1]
		stolen = true
	}
	if b != nil {
		p.pending--
		p.inflight[r] = 1
	}
	return b, stolen
}

// victimLocked picks the steal victim: the live replica (other than r) with
// the longest stealable queue, lowest id on ties. Returns -1 if none. A
// single batch queued at an idle owner is not stealable — the owner is about
// to take it anyway, so stealing it would be pure churn; stealing pays off
// only when the owner is busy executing or backlogged.
func (p *pool) victimLocked(r int) int {
	best, bestLen := -1, 0
	for v := range p.queues {
		if v == r || !p.live[v] || len(p.queues[v]) == 0 {
			continue
		}
		if len(p.queues[v]) == 1 && p.inflight[v] == 0 {
			continue
		}
		if len(p.queues[v]) > bestLen {
			best, bestLen = v, len(p.queues[v])
		}
	}
	return best
}

// replica is one model replica's serving loop.
func (p *pool) replica(r int) {
	idx := 0 // per-replica batch index, the fault plan's "step"
	for {
		p.mu.Lock()
		var b *batch
		var stolen bool
		for {
			if p.retiring[r] {
				// Scaled down: exit without taking new work (retireLocked
				// already re-homed the queue; the spawn wrapper's defer
				// marks the slot reusable).
				p.mu.Unlock()
				return
			}
			b, stolen = p.takeLocked(r)
			if b != nil {
				break
			}
			if p.closed && p.pending == 0 && p.inflightTotalLocked() == 0 {
				// Drain complete. The in-flight check matters: a replica
				// still executing could die and requeue its batch, so
				// waiters may not exit while any batch is in flight.
				p.mu.Unlock()
				return
			}
			p.cond.Wait()
		}
		if stolen {
			p.steals++
			p.s.obs.Count("serve.steals", 1)
		}
		p.cond.Broadcast() // a backlog slot freed; wake a blocked push
		p.mu.Unlock()

		if p.s.cfg.Faults.KillAt(r, idx) {
			p.die(r, b)
			return
		}
		start := p.s.clock.Now()
		if d := p.s.cfg.Faults.HangAt(r, idx); d > 0 {
			// Straggler injection: late but correct (clock-driven, so a
			// VirtualClock test controls exactly how late).
			<-p.s.clock.After(d)
		}
		if f := p.s.cfg.Faults.DegradeFactor(r); f > 1 {
			// Gray straggler: alive, correct, persistently slow. The stall
			// is clock-driven and inside the measured service window, so
			// health scoring sees exactly the injected slowdown.
			<-p.s.clock.After(time.Duration(float64(p.s.cfg.DegradeUnit) * (f - 1)))
		}
		idx++

		p.execute(r, b)

		if p.s.cfg.Health.enabled() {
			p.noteLatency(r, p.s.clock.Now().Sub(start))
		}

		p.mu.Lock()
		p.inflight[r] = 0
		// Wake drain waiters and anything observing pool state on the cond
		// (the gray chaos tests wait on served-batch counts this way instead
		// of sleeping).
		p.cond.Broadcast()
		p.mu.Unlock()
	}
}

// inflightTotalLocked counts replicas currently executing a batch.
func (p *pool) inflightTotalLocked() int {
	total := 0
	for _, f := range p.inflight {
		total += f
	}
	return total
}

// die implements replica-kill tolerance, mirroring the elastic trainer's
// re-shard: the dying replica hands its in-flight batch and queued backlog
// to the surviving replicas, so an admitted request is never lost to a kill.
func (p *pool) die(r int, inflight *batch) {
	p.mu.Lock()
	p.live[r] = false
	p.dead[r] = true // killed slots are never reused by resize
	p.nLive--
	p.inflight[r] = 0
	p.kills++
	backlog := p.queues[r]
	p.queues[r] = nil
	p.pending -= len(backlog) // re-enqueue below re-counts them
	toMove := append([]*batch{inflight}, backlog...)
	var orphaned []*request
	requeued := 0
	for _, b := range toMove {
		if p.nLive == 0 {
			orphaned = append(orphaned, b.reqs...)
			continue
		}
		p.enqueueLocked(b)
		p.requeued++
		requeued++
	}
	if p.s.obs.Enabled() {
		p.s.obs.Count("serve.replica_killed", 1)
		p.s.obs.Count("serve.requeued", int64(requeued))
		p.s.obs.SetGauge("serve.live_replicas", float64(p.nLive))
		p.s.obs.RecordFlight("replica_killed", obs.Ctx{},
			fmt.Sprintf("replica=%d requeued=%d live=%d", r, requeued, p.nLive))
	}
	p.cond.Broadcast()
	p.mu.Unlock()
	for _, req := range orphaned {
		p.s.fail(req, ErrClosed)
	}
}

// execute runs one batch through replica r's model and answers each request
// with its output row. Requests whose deadline passed while the batch sat in
// the pool queue are failed without paying for their forward pass.
func (p *pool) execute(r int, b *batch) {
	now := p.s.clock.Now()
	alive := b.reqs[:0]
	for _, req := range b.reqs {
		if req.expired(now) {
			p.s.fail(req, ErrDeadline)
			continue
		}
		if req.settled.Load() {
			// The other hedge copy already answered: cancel this one before
			// it pays for a forward pass.
			p.s.nHedgeCancelled.Add(1)
			p.s.obs.Count("serve.hedge_cancelled", 1)
			continue
		}
		alive = append(alive, req)
	}
	if len(alive) == 0 {
		return
	}
	// One exec span per batch on the replica's own track (tid 2000+r keeps
	// the single-goroutine-per-tid discipline: replica r is one goroutine).
	// The first request's trace id links the span to a concrete trace.
	sp := p.s.obs.Span(replicaTIDBase+r, "serve.exec")
	sp.SetArg("batch", len(alive))
	if alive[0].trace.Valid() {
		sp.SetArg("trace", alive[0].trace.String())
	}
	in := tensor.New(len(alive), p.s.cfg.InDim)
	for i, req := range alive {
		copy(in.Row(i).Data, req.x)
	}
	out := p.netFor(r, b.ver).Forward(in, false)
	sp.End()
	for i, req := range alive {
		row := append([]float64(nil), out.Row(i).Data...)
		p.s.complete(req, row, len(alive))
	}
}

// close wakes every replica for the drain-and-exit path and waits for them.
func (p *pool) close() {
	p.mu.Lock()
	p.closed = true
	p.cond.Broadcast()
	p.mu.Unlock()
	p.wg.Wait()
}

// counters snapshots the pool's fault/steal accounting.
func (p *pool) counters() (kills, requeued, steals int64, liveReplicas int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.kills, p.requeued, p.steals, p.nLive
}
