package serve

import (
	"bytes"
	"encoding/json"
	"testing"
	"time"
)

func loadCfg(seed uint64) LoadConfig {
	return LoadConfig{
		Requests:          2000,
		RatePerSec:        2000,
		Replicas:          2,
		MaxBatch:          8,
		MaxLinger:         2 * time.Millisecond,
		QueueCap:          64,
		MaxPendingBatches: 4,
		Seed:              seed,
	}
}

func TestLoadReportBitIdenticalAcrossRuns(t *testing.T) {
	a, err := RunLoad(loadCfg(42))
	if err != nil {
		t.Fatalf("RunLoad: %v", err)
	}
	b, err := RunLoad(loadCfg(42))
	if err != nil {
		t.Fatalf("RunLoad: %v", err)
	}
	ja, _ := json.Marshal(a)
	jb, _ := json.Marshal(b)
	if !bytes.Equal(ja, jb) {
		t.Fatalf("same seed produced different reports:\n%s\n%s", ja, jb)
	}

	c, err := RunLoad(loadCfg(43))
	if err != nil {
		t.Fatalf("RunLoad: %v", err)
	}
	jc, _ := json.Marshal(c)
	if bytes.Equal(ja, jc) {
		t.Fatal("different seeds produced bit-identical reports — arrivals are not seeded")
	}
}

func TestLoadOpenLoopBelowKneeNeverSheds(t *testing.T) {
	cfg := loadCfg(7)
	cfg.Service = DefaultServiceModel()
	knee := cfg.Service.CapacityRPS(cfg.Replicas, cfg.MaxBatch)
	cfg.RatePerSec = 0.5 * knee
	rep, err := RunLoad(cfg)
	if err != nil {
		t.Fatalf("RunLoad: %v", err)
	}
	if rep.Shed != 0 || rep.Expired != 0 {
		t.Fatalf("below the knee: shed=%d expired=%d, want 0/0", rep.Shed, rep.Expired)
	}
	if rep.Completed != cfg.Requests {
		t.Fatalf("completed = %d, want all %d", rep.Completed, cfg.Requests)
	}
	if rep.MeanBatch < 1 || rep.MeanBatch > float64(cfg.MaxBatch) {
		t.Fatalf("mean batch = %v, want within [1, %d]", rep.MeanBatch, cfg.MaxBatch)
	}
}

func TestLoadOpenLoopAboveKneeShedsWithBoundedTail(t *testing.T) {
	cfg := loadCfg(7)
	cfg.Service = DefaultServiceModel()
	knee := cfg.Service.CapacityRPS(cfg.Replicas, cfg.MaxBatch)
	cfg.RatePerSec = 3 * knee
	rep, err := RunLoad(cfg)
	if err != nil {
		t.Fatalf("RunLoad: %v", err)
	}
	if rep.Shed == 0 {
		t.Fatal("3x over capacity but nothing shed — admission control is not bounding load")
	}
	if rep.Completed+rep.Shed+rep.Expired != cfg.Requests {
		t.Fatalf("accounting: %d+%d+%d != %d",
			rep.Completed, rep.Shed, rep.Expired, cfg.Requests)
	}
	// The whole point of bounded queues: even infinitely offered load cannot
	// push the p99 past the time to drain a full pipeline.
	depth := float64(cfg.QueueCap + (cfg.MaxPendingBatches+cfg.Replicas+2)*cfg.MaxBatch)
	boundMs := depth/knee*1e3 + float64(cfg.MaxLinger)/1e6 + 10
	if rep.LatencyP99Ms > boundMs {
		t.Fatalf("p99 = %vms above the knee, want < %vms (bounded by pipeline depth)",
			rep.LatencyP99Ms, boundMs)
	}
	// Throughput saturates near capacity rather than collapsing.
	if rep.ThroughputRPS < 0.8*knee {
		t.Fatalf("throughput %v rps under overload, want >= 80%% of capacity %v",
			rep.ThroughputRPS, knee)
	}
}

func TestLoadClosedLoopBlocksInsteadOfShedding(t *testing.T) {
	cfg := LoadConfig{
		Requests:  1500,
		Closed:    true,
		Clients:   32,
		ThinkMean: time.Millisecond,
		Replicas:  2,
		MaxBatch:  8,
		MaxLinger: 2 * time.Millisecond,
		QueueCap:  8, // tiny on purpose: clients must block, not shed
		Seed:      5,
	}
	rep, err := RunLoad(cfg)
	if err != nil {
		t.Fatalf("RunLoad: %v", err)
	}
	if rep.Shed != 0 {
		t.Fatalf("closed loop shed %d requests — Infer must block, never shed", rep.Shed)
	}
	if rep.Completed != cfg.Requests {
		t.Fatalf("completed = %d, want all %d", rep.Completed, cfg.Requests)
	}
	if rep.Mode != "closed" {
		t.Fatalf("mode = %q, want closed", rep.Mode)
	}
}

func TestLoadTrickleLatencyIsLingerPlusService(t *testing.T) {
	cfg := loadCfg(11)
	cfg.Service = DefaultServiceModel()
	// ~20 rps against a multi-thousand-rps pool: requests are isolated, so
	// each one waits out its full linger and rides in a batch of 1.
	cfg.RatePerSec = 20
	cfg.Requests = 400
	rep, err := RunLoad(cfg)
	if err != nil {
		t.Fatalf("RunLoad: %v", err)
	}
	single := float64(cfg.Service.Base+cfg.Service.PerSample) / 1e6 // ms
	lingerMs := float64(cfg.MaxLinger) / 1e6
	if rep.LatencyP50Ms < single || rep.LatencyP50Ms > lingerMs+2*single {
		t.Fatalf("trickle p50 = %vms, want about linger(%vms)+service(%vms)",
			rep.LatencyP50Ms, lingerMs, single)
	}
	if rep.MeanBatch > 1.5 {
		t.Fatalf("trickle mean batch = %v, want mostly singleton batches", rep.MeanBatch)
	}
	if rep.Shed != 0 || rep.Expired != 0 {
		t.Fatalf("trickle shed=%d expired=%d, want none", rep.Shed, rep.Expired)
	}
}

func TestLoadDeadlineExpiresUnderOverload(t *testing.T) {
	cfg := loadCfg(13)
	cfg.Service = DefaultServiceModel()
	cfg.RatePerSec = 4 * cfg.Service.CapacityRPS(cfg.Replicas, cfg.MaxBatch)
	cfg.Deadline = 3 * time.Millisecond // tighter than the queueing delay
	rep, err := RunLoad(cfg)
	if err != nil {
		t.Fatalf("RunLoad: %v", err)
	}
	if rep.Expired == 0 {
		t.Fatal("overloaded with a tight deadline but nothing expired")
	}
	if rep.Completed+rep.Shed+rep.Expired != cfg.Requests {
		t.Fatalf("accounting: %d+%d+%d != %d",
			rep.Completed, rep.Shed, rep.Expired, cfg.Requests)
	}
}

func TestLoadConfigValidation(t *testing.T) {
	if _, err := RunLoad(LoadConfig{}); err == nil {
		t.Fatal("RunLoad accepted zero Requests")
	}
	if _, err := RunLoad(LoadConfig{Requests: 10}); err == nil {
		t.Fatal("RunLoad accepted an open-loop config without a rate")
	}
}

// grayLoadCfg is the E12 fleet shape at test scale: 6 replicas, one degraded
// 10x, offered load well below capacity so every latency shift is the
// straggler's doing, not queueing.
func grayLoadCfg(seed uint64) LoadConfig {
	cfg := LoadConfig{
		Requests:  4000,
		Replicas:  6,
		MaxBatch:  8,
		MaxLinger: 2 * time.Millisecond,
		QueueCap:  256,
		Seed:      seed,
		Service:   DefaultServiceModel(),
	}
	cfg.RatePerSec = 0.2 * cfg.Service.CapacityRPS(cfg.Replicas, cfg.MaxBatch)
	return cfg
}

func TestLoadGrayHedgedReportBitIdentical(t *testing.T) {
	cfg := grayLoadCfg(21)
	cfg.DegradeFactor = 10
	cfg.HedgeAfter = 6 * time.Millisecond
	a, err := RunLoad(cfg)
	if err != nil {
		t.Fatalf("RunLoad: %v", err)
	}
	b, err := RunLoad(cfg)
	if err != nil {
		t.Fatalf("RunLoad: %v", err)
	}
	ja, _ := json.Marshal(a)
	jb, _ := json.Marshal(b)
	if !bytes.Equal(ja, jb) {
		t.Fatalf("same seed produced different hedged gray reports:\n%s\n%s", ja, jb)
	}
	if a.Hedged == 0 {
		t.Fatal("degraded run at a tight budget never hedged")
	}
}

// TestLoadGrayHedgingCutsTail mirrors the acceptance criterion: with one
// replica degraded 10x, hedging at the clean fleet's p95 cuts p99 at least
// 2x versus no hedging, for at most 15% duplicated work.
func TestLoadGrayHedgingCutsTail(t *testing.T) {
	clean, err := RunLoad(grayLoadCfg(21))
	if err != nil {
		t.Fatalf("RunLoad: %v", err)
	}

	degraded := grayLoadCfg(21)
	degraded.DegradeFactor = 10
	unhedged, err := RunLoad(degraded)
	if err != nil {
		t.Fatalf("RunLoad: %v", err)
	}
	if unhedged.LatencyP99Ms < 3*clean.LatencyP99Ms {
		t.Fatalf("straggler barely moved p99: clean %.2fms, degraded %.2fms",
			clean.LatencyP99Ms, unhedged.LatencyP99Ms)
	}
	if unhedged.Hedged != 0 || unhedged.DuplicatedWorkPct != 0 {
		t.Fatalf("unhedged run reports hedging: %+v", unhedged)
	}

	hedged := degraded
	hedged.HedgeAfter = time.Duration(clean.LatencyP95Ms * float64(time.Millisecond))
	rep, err := RunLoad(hedged)
	if err != nil {
		t.Fatalf("RunLoad: %v", err)
	}
	if 2*rep.LatencyP99Ms > unhedged.LatencyP99Ms {
		t.Fatalf("hedging at p95 cut p99 only %.2fms -> %.2fms (< 2x)",
			unhedged.LatencyP99Ms, rep.LatencyP99Ms)
	}
	if rep.DuplicatedWorkPct > 15 {
		t.Fatalf("%.1f%% duplicated work at the p95 budget (> 15%%)", rep.DuplicatedWorkPct)
	}
	if rep.HedgeWins == 0 {
		t.Fatal("hedging cut the tail but no hedge ever won — accounting is wrong")
	}
	// Every hedge is either cancelled before service or produces exactly one
	// losing copy (wasted) — whichever of the two copies finishes second.
	if rep.HedgeCancelled+rep.HedgeWasted != rep.Hedged {
		t.Fatalf("hedge ledger does not balance: %+v", rep)
	}
	if rep.HedgeWins > rep.Hedged {
		t.Fatalf("more hedge wins than hedges launched: %+v", rep)
	}
	if rep.Completed != hedged.Requests {
		t.Fatalf("completed %d of %d under hedging", rep.Completed, hedged.Requests)
	}
}

func TestLoadGrayConfigValidation(t *testing.T) {
	cfg := grayLoadCfg(1)
	cfg.DegradeFactor = 10
	cfg.DegradeReplica = cfg.Replicas // out of range
	if _, err := RunLoad(cfg); err == nil {
		t.Fatal("RunLoad accepted an out-of-range DegradeReplica")
	}
	cfg = grayLoadCfg(1)
	cfg.HedgeAfter = -time.Millisecond
	if _, err := RunLoad(cfg); err == nil {
		t.Fatal("RunLoad accepted a negative HedgeAfter")
	}
}
