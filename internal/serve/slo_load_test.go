package serve

import (
	"reflect"
	"testing"
	"time"

	"repro/internal/obs"
)

// phasedSLOConfig is a short spike profile over a 2-replica pool (capacity
// 4000 rps): calm, a 2.5x-capacity spike, calm again.
func phasedSLOConfig(seed uint64) LoadConfig {
	return LoadConfig{
		Phases: []LoadPhase{
			{Duration: 2 * time.Second, RatePerSec: 1000},
			{Duration: time.Second, RatePerSec: 10000},
			{Duration: 2 * time.Second, RatePerSec: 1000},
		},
		Replicas:  2,
		MaxBatch:  8,
		MaxLinger: 2 * time.Millisecond,
		QueueCap:  64,
		Seed:      seed,
		SLO: []obs.Objective{
			{Name: "availability", Target: 0.999},
			{Name: "latency_p99", Target: 0.99, Latency: 0.025},
		},
		SLORules: obs.ScaledBurnRules(2 * time.Second),
	}
}

// TestLoadPhasedProfileDeterministic pins the phased generator: identical
// seeds give identical reports (including the alert timeline), different
// seeds differ, and the request count comes from the profile.
func TestLoadPhasedProfileDeterministic(t *testing.T) {
	a, err := RunLoad(phasedSLOConfig(3))
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunLoad(phasedSLOConfig(3))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed gave different reports:\n%+v\n%+v", a, b)
	}
	c, err := RunLoad(phasedSLOConfig(4))
	if err != nil {
		t.Fatal(err)
	}
	if a.Requests == c.Requests && reflect.DeepEqual(a.SLOAlerts, c.SLOAlerts) {
		t.Error("different seeds gave an identical run")
	}
	if a.Phases != 3 {
		t.Errorf("phases = %d, want 3", a.Phases)
	}
	// 2s*1000 + 1s*10000 + 2s*1000 = 14000 expected arrivals.
	if a.Requests < 10000 || a.Requests > 18000 {
		t.Errorf("profile issued %d requests, want ~14000", a.Requests)
	}
	if a.OfferedRPS != 14000.0/5 {
		t.Errorf("offered rps = %g, want profile mean 2800", a.OfferedRPS)
	}
}

// TestLoadSLOAlertsFireAndResolve checks the spike fires burn-rate alerts
// and calm traffic resolves them, all on virtual time.
func TestLoadSLOAlertsFireAndResolve(t *testing.T) {
	rep, err := RunLoad(phasedSLOConfig(3))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.SLOStatus) != 2 {
		t.Fatalf("slo status = %+v", rep.SLOStatus)
	}
	if rep.Shed == 0 {
		t.Fatal("spike at 2.5x capacity shed nothing; profile broken")
	}
	var fires, resolves int
	for _, ev := range rep.SLOAlerts {
		switch ev.State {
		case "fire":
			fires++
			if ev.T < 2 || ev.T > 3.5 {
				t.Errorf("alert fired at t=%gs, outside the spike window", ev.T)
			}
		case "resolve":
			resolves++
		}
	}
	if fires == 0 {
		t.Error("spike fired no alerts")
	}
	if resolves != fires {
		t.Errorf("fires=%d resolves=%d; every alert must resolve after the spike", fires, resolves)
	}
}

// TestLoadObsMirrors checks the simulator mirrors its accounting into an
// attached obs session: counters match the report and the latency histogram
// carries per-arrival trace exemplars.
func TestLoadObsMirrors(t *testing.T) {
	sess := obs.NewSession()
	cfg := phasedSLOConfig(3)
	cfg.Obs = sess
	rep, err := RunLoad(cfg)
	if err != nil {
		t.Fatal(err)
	}
	reg := sess.Registry
	if got := reg.Counter("serve.completed").Value(); got != int64(rep.Completed) {
		t.Errorf("serve.completed = %d, report says %d", got, rep.Completed)
	}
	if got := reg.Counter("serve.shed").Value(); got != int64(rep.Shed) {
		t.Errorf("serve.shed = %d, report says %d", got, rep.Shed)
	}
	if got := reg.Counter("serve.submitted").Value(); got != int64(rep.Requests-rep.Shed) {
		t.Errorf("serve.submitted = %d, want admitted %d", got, rep.Requests-rep.Shed)
	}
	h := reg.Histogram("serve.latency.hist", obs.DefLatencyBuckets)
	if got := h.Count(); got != uint64(rep.Completed) {
		t.Errorf("histogram count = %d, report says %d", got, rep.Completed)
	}
	var exemplars int
	for _, b := range reg.Snapshot().Hists[0].Buckets {
		if b.Exemplar != nil {
			exemplars++
			if b.Exemplar.Trace == 0 || b.Exemplar.Trace > uint64(rep.Requests) {
				t.Errorf("exemplar trace %d outside arrival-id range [1,%d]",
					b.Exemplar.Trace, rep.Requests)
			}
		}
	}
	if exemplars == 0 {
		t.Error("no trace exemplars recorded")
	}
	// Shed requests land in the flight recorder with their trace ids.
	var sheds int
	for _, ev := range sess.Flight.Events() {
		if ev.Kind == "shed" && ev.Trace != 0 {
			sheds++
		}
	}
	if sheds == 0 {
		t.Error("no shed events in the flight recorder")
	}
}
