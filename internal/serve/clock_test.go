package serve

import (
	"testing"
	"time"
)

func TestVirtualClockAdvanceFiresInDeadlineOrder(t *testing.T) {
	t0 := time.Unix(0, 0).UTC()
	c := NewVirtualClock(t0)
	if !c.Now().Equal(t0) {
		t.Fatalf("Now = %v, want %v", c.Now(), t0)
	}

	late := c.After(5 * time.Millisecond)
	early := c.After(2 * time.Millisecond)
	if n := c.Waiters(); n != 2 {
		t.Fatalf("Waiters = %d, want 2", n)
	}

	c.Advance(3 * time.Millisecond)
	select {
	case at := <-early:
		if want := t0.Add(3 * time.Millisecond); !at.Equal(want) {
			t.Fatalf("early fired at %v, want %v", at, want)
		}
	default:
		t.Fatal("early timer did not fire after Advance(3ms)")
	}
	select {
	case <-late:
		t.Fatal("late timer fired before its deadline")
	default:
	}
	if n := c.Waiters(); n != 1 {
		t.Fatalf("Waiters = %d after partial fire, want 1", n)
	}

	c.Advance(2 * time.Millisecond) // now exactly at the 5ms deadline
	select {
	case <-late:
	default:
		t.Fatal("late timer did not fire at its exact deadline")
	}
}

func TestVirtualClockAfterNonPositiveFiresImmediately(t *testing.T) {
	c := NewVirtualClock(time.Unix(0, 0).UTC())
	select {
	case <-c.After(0):
	default:
		t.Fatal("After(0) did not fire immediately")
	}
	select {
	case <-c.After(-time.Second):
	default:
		t.Fatal("After(negative) did not fire immediately")
	}
	if n := c.Waiters(); n != 0 {
		t.Fatalf("Waiters = %d, want 0", n)
	}
}

func TestVirtualClockBlockUntilWaiters(t *testing.T) {
	c := NewVirtualClock(time.Unix(0, 0).UTC())
	armed := make(chan struct{})
	go func() {
		c.BlockUntilWaiters(1)
		close(armed)
	}()
	select {
	case <-armed:
		t.Fatal("BlockUntilWaiters returned before any timer was armed")
	default:
	}
	c.After(time.Millisecond)
	<-armed // must unblock now; the test hangs (and times out) if broken
}
