package serve

import "time"

// batchPolicy is the pure micro-batching state machine, isolated from
// goroutines and channels so its flush decisions can be unit-tested with
// explicit virtual timestamps. The concurrent batchLoop below and the
// discrete-event load simulator (loadgen.go) both drive this one type, so a
// policy proven deterministic in tests is the policy production runs.
//
// Policy: a batch is dispatched when it reaches maxBatch requests (size
// flush), or when its oldest request has lingered maxLinger (time flush),
// whichever comes first.
type batchPolicy struct {
	maxBatch  int
	maxLinger time.Duration

	forming []*request
	firstAt time.Time
}

// admit adds one request at time now. It returns a non-nil batch exactly
// when the admission fills the batch to maxBatch (size flush).
func (p *batchPolicy) admit(r *request, now time.Time) []*request {
	if len(p.forming) == 0 {
		p.firstAt = now
	}
	p.forming = append(p.forming, r)
	if len(p.forming) >= p.maxBatch {
		return p.take()
	}
	return nil
}

// deadline returns the instant the forming batch must flush (time flush),
// and whether a batch is forming at all.
func (p *batchPolicy) deadline() (time.Time, bool) {
	if len(p.forming) == 0 {
		return time.Time{}, false
	}
	return p.firstAt.Add(p.maxLinger), true
}

// due reports whether the forming batch has lingered past its bound.
func (p *batchPolicy) due(now time.Time) bool {
	dl, ok := p.deadline()
	return ok && !now.Before(dl)
}

// take removes and returns the forming batch (nil when empty).
func (p *batchPolicy) take() []*request {
	b := p.forming
	p.forming = nil
	return b
}

// pending returns the number of requests in the forming batch.
func (p *batchPolicy) pending() int { return len(p.forming) }

// batchLoop is the batcher goroutine: it drains the admission queue through
// the batchPolicy and dispatches formed batches to the replica pool. All
// waiting is on channels — the admission queue and a linger timer from the
// injected clock — never on a sleep.
func (s *Server) batchLoop() {
	pol := &batchPolicy{maxBatch: s.cfg.MaxBatch, maxLinger: s.cfg.MaxLinger}
	var lingerC <-chan time.Time

	flush := func() {
		b := pol.take()
		lingerC = nil
		if len(b) > 0 {
			s.dispatch(b)
		}
	}

	// sizeFlush dispatches a batch the policy already took on size flush.
	sizeFlush := func(b []*request) {
		lingerC = nil
		s.dispatch(b)
	}

	for {
		if pol.pending() == 0 {
			// Idle: nothing forming, so no timer — just wait for work.
			req, ok := <-s.in
			if !ok {
				return
			}
			if b := s.admit(pol, req); b != nil {
				sizeFlush(b)
			} else if pol.pending() > 0 {
				// First request of a new batch: arm the linger timer once.
				// BlockUntilWaiters(1) on a VirtualClock observes this arm,
				// which is what makes the linger tests race-free.
				lingerC = s.clock.After(s.cfg.MaxLinger)
			}
			continue
		}
		select {
		case req, ok := <-s.in:
			if !ok {
				flush() // drain: the partial batch still ships
				return
			}
			if b := s.admit(pol, req); b != nil {
				sizeFlush(b)
			}
		case <-lingerC:
			// The timer was armed at firstAt, so firing means the oldest
			// request has lingered exactly MaxLinger.
			flush()
		}
	}
}

// admit screens one request (deadline already missed while queued?) and
// feeds it to the policy, returning the batch if the admission size-flushed.
func (s *Server) admit(pol *batchPolicy, req *request) []*request {
	if req.expired(s.clock.Now()) {
		s.fail(req, ErrDeadline)
		return nil
	}
	return pol.admit(req, s.clock.Now())
}

// dispatch ships one formed batch to the replica pool, dropping requests
// whose deadline passed while the batch was forming. Blocks while the pool
// backlog is at MaxPendingBatches — that stall is what backs pressure up
// into the admission queue.
func (s *Server) dispatch(reqs []*request) {
	now := s.clock.Now()
	alive := reqs[:0]
	for _, r := range reqs {
		if r.expired(now) {
			s.fail(r, ErrDeadline)
			continue
		}
		alive = append(alive, r)
	}
	if len(alive) == 0 {
		return
	}
	s.nBatches.Add(1)
	s.nSamples.Add(int64(len(alive)))
	if s.obs.Enabled() {
		s.obs.Count("serve.batches", 1)
		// The batch-size histogram reuses the timer reservoir with the
		// request count as the "seconds" value.
		s.obs.Registry.Timer("serve.batch_size").ObserveSeconds(float64(len(alive)))
	}
	s.pool.push(&batch{reqs: alive})
}
