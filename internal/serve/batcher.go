package serve

import "time"

// batchPolicy is the pure micro-batching state machine, isolated from
// goroutines and channels so its flush decisions can be unit-tested with
// explicit virtual timestamps. The concurrent batchLoop below and the
// discrete-event load simulator (loadgen.go) both drive this one type, so a
// policy proven deterministic in tests is the policy production runs.
//
// Policy: a batch is dispatched when it reaches maxBatch requests (size
// flush), or when its oldest request has lingered maxLinger (time flush),
// whichever comes first.
type batchPolicy struct {
	maxBatch  int
	maxLinger time.Duration

	forming []*request
	firstAt time.Time
}

// admit adds one request at time now. It returns a non-nil batch exactly
// when the admission fills the batch to maxBatch (size flush).
func (p *batchPolicy) admit(r *request, now time.Time) []*request {
	if len(p.forming) == 0 {
		p.firstAt = now
	}
	p.forming = append(p.forming, r)
	if len(p.forming) >= p.maxBatch {
		return p.take()
	}
	return nil
}

// deadline returns the instant the forming batch must flush (time flush),
// and whether a batch is forming at all.
func (p *batchPolicy) deadline() (time.Time, bool) {
	if len(p.forming) == 0 {
		return time.Time{}, false
	}
	return p.firstAt.Add(p.maxLinger), true
}

// due reports whether the forming batch has lingered past its bound.
func (p *batchPolicy) due(now time.Time) bool {
	dl, ok := p.deadline()
	return ok && !now.Before(dl)
}

// take removes and returns the forming batch (nil when empty).
func (p *batchPolicy) take() []*request {
	b := p.forming
	p.forming = nil
	return b
}

// pending returns the number of requests in the forming batch.
func (p *batchPolicy) pending() int { return len(p.forming) }

// batchLoop is the batcher goroutine: it drains the admission queue through
// per-version batchPolicies and dispatches formed batches to the replica
// pool. All waiting is on channels — the admission queue and one linger timer
// per forming batch from the injected clock — never on a sleep.
//
// With a rollout in flight the batcher is also the traffic splitter's second
// half: routeRequest assigned each request's version at submit time, and the
// batcher keeps one forming batch per version (batches never mix versions —
// a batch executes against exactly one model) and materialises the shadow
// copies that ride candidate batches with their answers discarded.
func (s *Server) batchLoop() {
	pols := [2]*batchPolicy{
		{maxBatch: s.cfg.MaxBatch, maxLinger: s.cfg.MaxLinger},
		{maxBatch: s.cfg.MaxBatch, maxLinger: s.cfg.MaxLinger},
	}
	var lingerC [2]<-chan time.Time

	flush := func(v int) {
		b := pols[v].take()
		lingerC[v] = nil
		if len(b) > 0 {
			s.dispatch(b, v)
		}
	}

	// admitVer feeds one request to its version's policy, dispatching on size
	// flush and arming that version's linger timer when a new batch starts.
	// lingerC[v] == nil exactly when pols[v] was empty, so the timer is armed
	// at the forming batch's firstAt in both the idle and the select branch.
	// BlockUntilWaiters on a VirtualClock observes the arm, which is what
	// makes the linger tests race-free.
	admitVer := func(req *request, v int) {
		if v == VersionCandidate {
			s.nCanaryInflight.Add(1)
			s.nCanaryServed.Add(1)
		}
		if b := s.admit(pols[v], req); b != nil {
			lingerC[v] = nil
			s.dispatch(b, v)
		} else if pols[v].pending() > 0 && lingerC[v] == nil {
			lingerC[v] = s.clock.After(s.cfg.MaxLinger)
		}
	}

	// handle admits one routed request, materialising the shadow copy the
	// router asked for: same features, deadline and trace, but the answer
	// goes to a channel nobody reads and only the candidate's SLO monitor
	// sees the outcome.
	handle := func(req *request) {
		admitVer(req, req.version)
		if req.wantShadow && s.rollout.Load() != nil {
			sh := &request{x: req.x, deadline: req.deadline, arrived: req.arrived,
				done: make(chan Result, 1), trace: req.trace,
				version: VersionCandidate, shadow: true}
			admitVer(sh, VersionCandidate)
		}
	}

	for {
		if pols[0].pending() == 0 && pols[1].pending() == 0 {
			// Idle: nothing forming, so no timers — just wait for work.
			req, ok := <-s.in
			if !ok {
				return
			}
			handle(req)
			continue
		}
		select {
		case req, ok := <-s.in:
			if !ok {
				flush(VersionBaseline) // drain: partial batches still ship
				flush(VersionCandidate)
				return
			}
			handle(req)
		case <-lingerC[0]:
			// The timer was armed at firstAt, so firing means the oldest
			// request has lingered exactly MaxLinger.
			flush(0)
		case <-lingerC[1]:
			flush(1)
		}
	}
}

// admit screens one request (deadline already missed while queued?) and
// feeds it to the policy, returning the batch if the admission size-flushed.
func (s *Server) admit(pol *batchPolicy, req *request) []*request {
	if req.expired(s.clock.Now()) {
		s.fail(req, ErrDeadline)
		return nil
	}
	return pol.admit(req, s.clock.Now())
}

// dispatch ships one formed batch (all of one model version) to the replica
// pool, dropping requests whose deadline passed while the batch was forming.
// Blocks while the pool backlog is at MaxPendingBatches — that stall is what
// backs pressure up into the admission queue.
func (s *Server) dispatch(reqs []*request, ver int) {
	now := s.clock.Now()
	alive := reqs[:0]
	for _, r := range reqs {
		if r.expired(now) {
			s.fail(r, ErrDeadline)
			continue
		}
		alive = append(alive, r)
	}
	if len(alive) == 0 {
		return
	}
	s.nBatches.Add(1)
	s.nSamples.Add(int64(len(alive)))
	if s.obs.Enabled() {
		s.obs.Count("serve.batches", 1)
		// The batch-size histogram reuses the timer reservoir with the
		// request count as the "seconds" value.
		s.obs.Registry.Timer("serve.batch_size").ObserveSeconds(float64(len(alive)))
	}
	s.pool.push(&batch{reqs: alive, ver: ver})
}
