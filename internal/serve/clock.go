package serve

import (
	"sort"
	"sync"
	"time"
)

// Clock abstracts time for the serving layer. The production server runs on
// the wall clock; every test that asserts a latency, a linger flush, or a
// deadline runs on a *VirtualClock instead, so CI never sleeps and never
// flakes. Only two operations are needed: reading now and arming a one-shot
// timer.
type Clock interface {
	// Now returns the current time on this clock.
	Now() time.Time
	// After returns a channel that receives the clock's time once at least
	// d has elapsed. The channel has capacity 1 so an abandoned timer never
	// blocks the clock.
	After(d time.Duration) <-chan time.Time
}

// realClock is the wall clock.
type realClock struct{}

func (realClock) Now() time.Time                         { return time.Now() }
func (realClock) After(d time.Duration) <-chan time.Time { return time.After(d) }

// RealClock returns the wall clock.
func RealClock() Clock { return realClock{} }

// VirtualClock is a manually advanced clock for deterministic tests. Time
// only moves when Advance is called; armed timers fire synchronously inside
// Advance, in deadline order. BlockUntilWaiters gives tests an event (not
// sleep) based way to wait for the server to arm its linger timer before
// advancing past it.
type VirtualClock struct {
	mu      sync.Mutex
	cond    *sync.Cond
	now     time.Time
	waiters []vcWaiter
}

type vcWaiter struct {
	at time.Time
	ch chan time.Time
}

// NewVirtualClock returns a virtual clock starting at the given instant.
func NewVirtualClock(start time.Time) *VirtualClock {
	c := &VirtualClock{now: start}
	c.cond = sync.NewCond(&c.mu)
	return c
}

// Now returns the current virtual time.
func (c *VirtualClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

// After arms a one-shot timer d from the current virtual time. A timer with
// d <= 0 fires immediately.
func (c *VirtualClock) After(d time.Duration) <-chan time.Time {
	ch := make(chan time.Time, 1)
	c.mu.Lock()
	defer c.mu.Unlock()
	if d <= 0 {
		ch <- c.now
		return ch
	}
	c.waiters = append(c.waiters, vcWaiter{at: c.now.Add(d), ch: ch})
	c.cond.Broadcast()
	return ch
}

// Advance moves virtual time forward by d and fires every timer whose
// deadline has been reached, in deadline order (ties fire in arming order).
func (c *VirtualClock) Advance(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.now = c.now.Add(d)
	sort.SliceStable(c.waiters, func(i, j int) bool {
		return c.waiters[i].at.Before(c.waiters[j].at)
	})
	keep := c.waiters[:0]
	for _, w := range c.waiters {
		if w.at.After(c.now) {
			keep = append(keep, w)
			continue
		}
		w.ch <- c.now
	}
	c.waiters = append([]vcWaiter(nil), keep...)
}

// Waiters returns the number of armed, not-yet-fired timers.
func (c *VirtualClock) Waiters() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.waiters)
}

// BlockUntilWaiters blocks until at least n timers are armed. It is the
// synchronisation point tests use between "submit a request" and "advance
// past the linger bound": once the batcher has armed its linger timer the
// request is provably buffered, so an Advance cannot race the admission.
func (c *VirtualClock) BlockUntilWaiters(n int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for len(c.waiters) < n {
		c.cond.Wait()
	}
}
