package serve

import (
	"errors"
	"sync"
	"testing"
)

// barePool fabricates pool state without running replica goroutines, so the
// scheduling decisions (least-loaded placement, FIFO take, steal victim
// choice) are tested as pure functions of the queue state.
func barePool(replicas int) *pool {
	p := &pool{
		s:        &Server{cfg: Config{Replicas: replicas}},
		queues:   make([][]*batch, replicas),
		inflight: make([]int, replicas),
		live:     make([]bool, replicas),
		running:  make([]bool, replicas),
		dead:     make([]bool, replicas),
		retiring: make([]bool, replicas),
		nLive:    replicas,
		capacity: replicas,
		ewma:     make([]float64, replicas),
		nObs:     make([]int, replicas),
		ejected:  make([]bool, replicas),
	}
	for r := range p.live {
		p.live[r] = true
	}
	p.cond = sync.NewCond(&p.mu)
	return p
}

func mkBatch(ids ...int) *batch {
	b := &batch{}
	for _, id := range ids {
		b.reqs = append(b.reqs, polReq(id))
	}
	return b
}

func TestEnqueuePicksLeastLoadedReplica(t *testing.T) {
	p := barePool(3)
	p.queues[0] = []*batch{mkBatch(0)} // load 1
	p.inflight[1] = 1                  // load 1: in-flight counts
	b := mkBatch(9)
	p.enqueueLocked(b)
	if len(p.queues[2]) != 1 || p.queues[2][0] != b {
		t.Fatalf("batch went to queues %v, want replica 2 (load 0)", p.queues)
	}

	// Ties break to the lowest id.
	p2 := barePool(3)
	b2 := mkBatch(1)
	p2.enqueueLocked(b2)
	if len(p2.queues[0]) != 1 || p2.queues[0][0] != b2 {
		t.Fatalf("tie-break placed batch in %v, want replica 0", p2.queues)
	}

	// Dead replicas are never chosen, even when idle.
	p3 := barePool(2)
	p3.live[0] = false
	p3.nLive = 1
	p3.inflight[1] = 1
	b3 := mkBatch(2)
	p3.enqueueLocked(b3)
	if len(p3.queues[1]) != 1 {
		t.Fatalf("batch placed in %v, want busy-but-live replica 1", p3.queues)
	}
}

func TestTakeOwnQueueIsFIFO(t *testing.T) {
	p := barePool(2)
	a, b := mkBatch(0), mkBatch(1)
	p.queues[0] = []*batch{a, b}
	p.pending = 2

	got, stolen := p.takeLocked(0)
	if got != a || stolen {
		t.Fatalf("take = %v stolen=%v, want front batch a unstolen", got, stolen)
	}
	if p.inflight[0] != 1 || p.pending != 1 {
		t.Fatalf("inflight=%d pending=%d after take, want 1/1", p.inflight[0], p.pending)
	}
	got, stolen = p.takeLocked(0)
	if got != b || stolen {
		t.Fatalf("second take = %v stolen=%v, want b unstolen", got, stolen)
	}
}

func TestStealTakesBackOfLongestBusyQueue(t *testing.T) {
	p := barePool(3)
	a, b, c, d, e := mkBatch(0), mkBatch(1), mkBatch(2), mkBatch(3), mkBatch(4)
	p.queues[1] = []*batch{a, b}
	p.queues[2] = []*batch{c, d, e}
	p.inflight[1] = 1
	p.inflight[2] = 1
	p.pending = 5

	got, stolen := p.takeLocked(0)
	if got != e || !stolen {
		t.Fatalf("steal = %v stolen=%v, want e (back of replica 2's longer queue)", got, stolen)
	}
	if len(p.queues[2]) != 2 || p.queues[2][1] != d {
		t.Fatalf("victim queue = %v, want [c d] with the back removed", p.queues[2])
	}
}

func TestStealSkipsSingletonAtIdleOwner(t *testing.T) {
	p := barePool(2)
	a := mkBatch(0)
	p.queues[1] = []*batch{a}
	p.pending = 1

	// Replica 1 is idle and about to take its own singleton: stealing it
	// would be churn, so replica 0 must find no victim.
	if v := p.victimLocked(0); v != -1 {
		t.Fatalf("victim = %d, want -1 (singleton at idle owner is not stealable)", v)
	}
	got, stolen := p.takeLocked(0)
	if got != nil || stolen {
		t.Fatalf("take = %v stolen=%v, want nothing", got, stolen)
	}

	// Once the owner is busy, the same singleton becomes fair game.
	p.inflight[1] = 1
	if v := p.victimLocked(0); v != 1 {
		t.Fatalf("victim = %d, want 1 (owner busy)", v)
	}
	got, stolen = p.takeLocked(0)
	if got != a || !stolen {
		t.Fatalf("take = %v stolen=%v, want the singleton stolen", got, stolen)
	}

	// Dead replicas are never victims.
	p2 := barePool(2)
	p2.queues[1] = []*batch{mkBatch(9)}
	p2.inflight[1] = 1
	p2.live[1] = false
	p2.nLive = 1
	if v := p2.victimLocked(0); v != -1 {
		t.Fatalf("victim = %d, want -1 (dead replica)", v)
	}
}

func TestDieRedistributesBacklogToSurvivors(t *testing.T) {
	p := barePool(2)
	inflight := mkBatch(0)
	b1, b2 := mkBatch(1), mkBatch(2)
	p.queues[0] = []*batch{b1, b2}
	p.inflight[0] = 1
	p.pending = 2

	p.die(0, inflight)

	if p.live[0] || p.nLive != 1 {
		t.Fatalf("live=%v nLive=%d after die, want replica 0 dead", p.live, p.nLive)
	}
	if len(p.queues[0]) != 0 {
		t.Fatalf("dead replica still holds %d batches", len(p.queues[0]))
	}
	if len(p.queues[1]) != 3 || p.pending != 3 {
		t.Fatalf("survivor queue = %d batches, pending = %d; want all 3 re-homed",
			len(p.queues[1]), p.pending)
	}
	// In-flight batch re-homes first: it has waited longest.
	if p.queues[1][0] != inflight || p.queues[1][1] != b1 || p.queues[1][2] != b2 {
		t.Fatalf("survivor queue order wrong: want [inflight b1 b2]")
	}
	if p.kills != 1 || p.requeued != 3 {
		t.Fatalf("kills=%d requeued=%d, want 1/3", p.kills, p.requeued)
	}
}

func TestDieWithNoSurvivorsFailsOrphans(t *testing.T) {
	// Config validation forbids killing every replica, but die() itself must
	// stay safe if it ever happens: orphaned requests fail, never hang.
	p := barePool(1)
	req := polReq(0)
	p.inflight[0] = 1
	p.die(0, &batch{reqs: []*request{req}})

	select {
	case res := <-req.done:
		if !errors.Is(res.Err, ErrClosed) {
			t.Fatalf("orphan err = %v, want ErrClosed", res.Err)
		}
	default:
		t.Fatal("orphaned request was never failed")
	}
	if p.nLive != 0 {
		t.Fatalf("nLive = %d, want 0", p.nLive)
	}
}
