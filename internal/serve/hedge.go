package serve

// Hedged execution: a request that outlives a latency budget is duplicated
// to a second replica, the first answer wins, and the loser is cancelled
// before its forward pass whenever possible. This is the classic
// tail-tolerant counter to the gray straggler — a replica that is alive but
// persistently slow inflates p99 by exactly the requests unlucky enough to
// land on it, and hedging converts that tail into a bounded amount of
// duplicated work instead.
//
// The mechanism rides the existing pipeline: at admission each request arms
// a watcher on the server's Clock; if the request is still unsettled when
// the budget elapses, the watcher pushes a one-request hedge batch straight
// to the replica pool (least-loaded placement naturally avoids the straggler
// the original is stuck on). The settle CAS on the request arbitrates the
// race; execute() drops copies whose twin already answered, so a cancelled
// hedge costs a queue slot, not a forward pass.

import "time"

// HedgeConfig parameterises hedged execution.
type HedgeConfig struct {
	// After is the latency budget: a request still unanswered this long
	// after admission is duplicated to a second replica. 0 disables hedging.
	// Calibrate it from a healthy-fleet latency quantile (E12 uses the clean
	// p95) — too low duplicates the whole workload, too high helps no one.
	After time.Duration
}

func (h HedgeConfig) enabled() bool { return h.After > 0 }

// hedgeTID is the Chrome-trace track the hedge flow events live on: flow
// arrows (ph=s/f) never touch the tracer's per-tid span stacks, so a shared
// track is safe from any goroutine.
const hedgeTID = 1000

// armHedge starts the hedge watcher for an admitted request (no-op when
// hedging is disabled).
func (s *Server) armHedge(req *request) {
	if !s.cfg.Hedge.enabled() {
		return
	}
	s.hedgeWG.Add(1)
	go s.hedgeWatch(req)
}

// hedgeWatch waits out the hedge budget, then duplicates the request to the
// pool unless the original already answered. The settledCh case is what
// keeps Close leak-free: settling a request wakes its watcher immediately,
// so no watcher ever sits on a timer that a VirtualClock will never fire.
func (s *Server) hedgeWatch(req *request) {
	defer s.hedgeWG.Done()
	select {
	case <-req.settledCh:
		return // answered within budget: no hedge
	case <-s.clock.After(s.cfg.Hedge.After):
	}
	if req.settled.Load() {
		return // answered while the timer fired: no hedge
	}
	s.nHedged.Add(1)
	s.obs.Count("serve.hedged", 1)
	req.hedged.Store(true)
	// Start a flow arrow keyed by the trace id; the settle winner's
	// completion ends it, stitching the hedged pair in the trace viewer.
	s.obs.FlowBegin(req.trace.Trace, hedgeTID, "hedge")
	s.obs.RecordFlight("hedged", req.trace, "")
	// A one-request batch straight to the pool: least-loaded placement steers
	// it away from the replica the original is queued or executing on. If the
	// pool is closed or drained this push fails the request, which the settle
	// CAS turns into a no-op when the original copy got there first.
	s.pool.push(&batch{reqs: []*request{req}, ver: req.version})
}
