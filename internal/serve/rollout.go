package serve

// Versioned rollout: the self-healing half of the serving control plane.
//
// A Rollout manages one candidate model version moving toward production
// behind staged canary traffic splits. The controller is a pure state
// machine on explicit time — the concurrent Server and the discrete-event
// load simulator both drive this one type, exactly like batchPolicy — and
// every judgement it makes flows through per-version obs.SLOMonitor
// burn-rate rules:
//
//	Pending ──Deploy──> Shadowing ──hold──> Canarying(stage 0..n) ──> Promoted
//	                        │                   │        │
//	                        │ page burn         │ page   │ freeze-rule burn
//	                        ▼                   ▼        ▼
//	                    RollingBack <────────── ┘     (frozen: stage timer
//	                        │ drained/grace            paused until resolve)
//	                        ▼
//	                    RolledBack
//
// Shadowing duplicates a fraction of live traffic onto the candidate and
// discards the answers, so a poisoned version can burn its error budget —
// and be rolled back — before a single user request is routed to it.
// Canarying walks the configured traffic-split stages, holding each for a
// soak period; a page-severity burn (the fast rule) on the candidate's
// monitor at any stage freezes promotion and reverts all traffic to the
// baseline; a slow burn freezes the stage clock without reverting. Rollback
// is bounded: the driver reports when the last candidate request drains, and
// a grace timer forces the RolledBack transition even if it never does.

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/obs"
)

// Model version indices. The data plane routes by these: version 0 is the
// serving baseline, version 1 the rollout candidate.
const (
	VersionBaseline  = 0
	VersionCandidate = 1
)

// RolloutStage is one canary step: route Fraction of traffic to the
// candidate and soak for Hold before advancing.
type RolloutStage struct {
	Fraction float64       `json:"fraction"`
	Hold     time.Duration `json:"hold"`
}

// DefaultRolloutStages is the classic 1% -> 5% -> 25% -> 100% progression.
func DefaultRolloutStages(hold time.Duration) []RolloutStage {
	return []RolloutStage{
		{Fraction: 0.01, Hold: hold},
		{Fraction: 0.05, Hold: hold},
		{Fraction: 0.25, Hold: hold},
		{Fraction: 1.00, Hold: hold},
	}
}

// RolloutConfig parameterises one versioned rollout.
type RolloutConfig struct {
	// Stages is the canary progression (default DefaultRolloutStages(2s)).
	// Fractions must be increasing in (0, 1]; the last stage is the full
	// promotion target.
	Stages []RolloutStage
	// Shadow, when positive, inserts a shadow phase of this length before the
	// first canary stage: ShadowFraction of requests are duplicated onto the
	// candidate, answers discarded, outcomes recorded against its SLO.
	Shadow time.Duration
	// ShadowFraction is the share of live traffic duplicated while shadowing
	// (default 0.2 when Shadow > 0).
	ShadowFraction float64
	// SLO is the per-version objective set; each version gets its own
	// monitor over the same objectives (default: 99.9% availability).
	SLO []obs.Objective
	// Rules are the burn-rate rules (default obs.DefaultBurnRules; simulated
	// seconds-scale runs should pass obs.ScaledBurnRules).
	Rules []obs.BurnRule
	// PageRule names the rule whose firing on the candidate triggers
	// automatic rollback (default "fast" — the page-severity rule).
	PageRule string
	// FreezeRule names the rule whose firing freezes stage promotion without
	// reverting traffic (default "slow" — the ticket-severity rule).
	FreezeRule string
	// DrainGrace bounds RollingBack: if the driver has not reported the
	// candidate drained this long after the rollback, the controller declares
	// RolledBack anyway (default 1s).
	DrainGrace time.Duration
}

func (c *RolloutConfig) withDefaults() error {
	if len(c.Stages) == 0 {
		c.Stages = DefaultRolloutStages(2 * time.Second)
	}
	prev := 0.0
	for i, st := range c.Stages {
		if st.Fraction <= prev || st.Fraction > 1 {
			return fmt.Errorf("serve: rollout stage %d fraction %g must be increasing in (0,1]",
				i, st.Fraction)
		}
		if st.Hold <= 0 {
			return fmt.Errorf("serve: rollout stage %d needs Hold > 0", i)
		}
		prev = st.Fraction
	}
	if c.Shadow < 0 {
		return fmt.Errorf("serve: negative shadow duration %v", c.Shadow)
	}
	if c.Shadow > 0 && c.ShadowFraction <= 0 {
		c.ShadowFraction = 0.2
	}
	if c.ShadowFraction < 0 || c.ShadowFraction > 1 {
		return fmt.Errorf("serve: shadow fraction %g outside [0,1]", c.ShadowFraction)
	}
	if len(c.SLO) == 0 {
		c.SLO = []obs.Objective{{Name: "availability", Target: 0.999}}
	}
	if len(c.Rules) == 0 {
		c.Rules = obs.DefaultBurnRules()
	}
	if c.PageRule == "" {
		c.PageRule = "fast"
	}
	if c.FreezeRule == "" {
		c.FreezeRule = "slow"
	}
	if c.DrainGrace <= 0 {
		c.DrainGrace = time.Second
	}
	return nil
}

// RolloutState enumerates the controller's states.
type RolloutState int

const (
	// RolloutPending: configured, not yet deployed.
	RolloutPending RolloutState = iota
	// RolloutShadowing: candidate receives duplicated traffic only.
	RolloutShadowing
	// RolloutCanarying: candidate serves a staged fraction of live traffic.
	RolloutCanarying
	// RolloutPromoted: candidate serves 100% (terminal success).
	RolloutPromoted
	// RolloutRollingBack: traffic reverted to baseline, candidate draining.
	RolloutRollingBack
	// RolloutRolledBack: rollback complete (terminal failure).
	RolloutRolledBack
)

// String names the state (the report/JSON spelling).
func (s RolloutState) String() string {
	switch s {
	case RolloutPending:
		return "pending"
	case RolloutShadowing:
		return "shadowing"
	case RolloutCanarying:
		return "canarying"
	case RolloutPromoted:
		return "promoted"
	case RolloutRollingBack:
		return "rolling_back"
	case RolloutRolledBack:
		return "rolled_back"
	default:
		return "rollout?"
	}
}

// Terminal reports whether the rollout has reached an end state.
func (s RolloutState) Terminal() bool {
	return s == RolloutPromoted || s == RolloutRolledBack
}

// RolloutEvent is one transition in the rollout timeline.
type RolloutEvent struct {
	T        float64 `json:"t"` // seconds
	Event    string  `json:"event"`
	Stage    int     `json:"stage"`
	Fraction float64 `json:"fraction"`
	Detail   string  `json:"detail,omitempty"`
}

// Rollout is the versioned-rollout controller. Drive it with Deploy once,
// RecordServed per request outcome, Tick at a fixed cadence, and Drained
// when the data plane reports no candidate requests in flight. All methods
// are safe for concurrent use; time is whatever the driver passes (virtual
// seconds in the simulator, clock-derived seconds in the Server).
type Rollout struct {
	mu         sync.Mutex
	cfg        RolloutConfig
	state      RolloutState
	stage      int
	stageStart float64
	frozen     bool
	deployedAt float64
	rolledAt   float64 // rollback trigger time (RollingBack entry)
	detectedAt float64 // first candidate page fire
	detected   bool
	monitors   [2]*obs.SLOMonitor
	events     []RolloutEvent
}

// NewRollout validates cfg and returns a controller in RolloutPending.
func NewRollout(cfg RolloutConfig) (*Rollout, error) {
	if err := cfg.withDefaults(); err != nil {
		return nil, err
	}
	ro := &Rollout{cfg: cfg}
	for v := range ro.monitors {
		ro.monitors[v] = obs.NewSLOMonitor(cfg.SLO, cfg.Rules)
	}
	return ro, nil
}

// Config returns the validated configuration.
func (ro *Rollout) Config() RolloutConfig {
	ro.mu.Lock()
	defer ro.mu.Unlock()
	return ro.cfg
}

// Deploy starts the rollout at time t (seconds): Shadowing when a shadow
// phase is configured, else the first canary stage.
func (ro *Rollout) Deploy(t float64) {
	ro.mu.Lock()
	defer ro.mu.Unlock()
	if ro.state != RolloutPending {
		return
	}
	ro.deployedAt = t
	ro.stageStart = t
	if ro.cfg.Shadow > 0 {
		ro.state = RolloutShadowing
		ro.eventLocked(t, "deploy", "shadowing")
		return
	}
	ro.state = RolloutCanarying
	ro.eventLocked(t, "deploy", "canary")
}

// RecordServed feeds one request outcome into the version's SLO monitor:
// availability (ok) always, latency when latencySeconds >= 0. Shadow
// completions are recorded exactly like live ones — that is the point of
// shadowing.
func (ro *Rollout) RecordServed(version int, ok bool, latencySeconds float64) {
	if ro == nil || version < 0 || version > 1 {
		return
	}
	ro.mu.Lock()
	m := ro.monitors[version]
	ro.mu.Unlock()
	m.RecordAvailability(ok)
	if ok && latencySeconds >= 0 {
		m.RecordLatency(latencySeconds)
	}
}

// CanaryFraction returns the share of live traffic the candidate should
// receive right now (0 while pending/shadowing/rolled back, the stage
// fraction while canarying, 1 when promoted).
func (ro *Rollout) CanaryFraction() float64 {
	if ro == nil {
		return 0
	}
	ro.mu.Lock()
	defer ro.mu.Unlock()
	switch ro.state {
	case RolloutCanarying:
		return ro.cfg.Stages[ro.stage].Fraction
	case RolloutPromoted:
		return 1
	default:
		return 0
	}
}

// ShadowFraction returns the share of live traffic to duplicate onto the
// candidate right now (non-zero only while shadowing).
func (ro *Rollout) ShadowFraction() float64 {
	if ro == nil {
		return 0
	}
	ro.mu.Lock()
	defer ro.mu.Unlock()
	if ro.state == RolloutShadowing {
		return ro.cfg.ShadowFraction
	}
	return 0
}

// State returns the current controller state.
func (ro *Rollout) State() RolloutState {
	if ro == nil {
		return RolloutPending
	}
	ro.mu.Lock()
	defer ro.mu.Unlock()
	return ro.state
}

// Stage returns the current canary stage index (meaningful while canarying).
func (ro *Rollout) Stage() int {
	ro.mu.Lock()
	defer ro.mu.Unlock()
	return ro.stage
}

// Frozen reports whether promotion is currently frozen by the freeze rule.
func (ro *Rollout) Frozen() bool {
	ro.mu.Lock()
	defer ro.mu.Unlock()
	return ro.frozen
}

// Events returns the rollout timeline so far.
func (ro *Rollout) Events() []RolloutEvent {
	if ro == nil {
		return nil
	}
	ro.mu.Lock()
	defer ro.mu.Unlock()
	return append([]RolloutEvent(nil), ro.events...)
}

// Monitor returns the version's SLO monitor (for end-of-run status).
func (ro *Rollout) Monitor(version int) *obs.SLOMonitor {
	if ro == nil || version < 0 || version > 1 {
		return nil
	}
	ro.mu.Lock()
	defer ro.mu.Unlock()
	return ro.monitors[version]
}

// TimeToDetect returns seconds from deploy to the first candidate page fire
// (ok=false if no page ever fired).
func (ro *Rollout) TimeToDetect() (float64, bool) {
	ro.mu.Lock()
	defer ro.mu.Unlock()
	if !ro.detected {
		return 0, false
	}
	return ro.detectedAt - ro.deployedAt, true
}

// TimeToRollback returns seconds from the page fire to rollback completion
// (ok=false unless the rollout ended RolledBack).
func (ro *Rollout) TimeToRollback() (float64, bool) {
	ro.mu.Lock()
	defer ro.mu.Unlock()
	if ro.state != RolloutRolledBack || !ro.detected {
		return 0, false
	}
	for _, ev := range ro.events {
		if ev.Event == "rolled_back" {
			return ev.T - ro.detectedAt, true
		}
	}
	return 0, false
}

// Drained tells the controller the data plane has no candidate requests in
// flight; while RollingBack this completes the rollback.
func (ro *Rollout) Drained(t float64) {
	ro.mu.Lock()
	defer ro.mu.Unlock()
	if ro.state == RolloutRollingBack {
		ro.completeRollbackLocked(t, "drained")
	}
}

// Tick advances the controller to time t (seconds): both monitors tick,
// then the state machine evaluates burns, stage holds, and the drain grace.
// Call at a fixed cadence with non-decreasing t.
func (ro *Rollout) Tick(t float64) RolloutState {
	if ro == nil {
		return RolloutPending
	}
	ro.mu.Lock()
	defer ro.mu.Unlock()
	if ro.state == RolloutPending || ro.state.Terminal() {
		return ro.state
	}
	for _, m := range ro.monitors {
		m.Tick(t)
	}
	paging := ro.ruleFiringLocked(ro.cfg.PageRule)
	freezing := ro.ruleFiringLocked(ro.cfg.FreezeRule)
	if paging && !ro.detected {
		ro.detected = true
		ro.detectedAt = t
		ro.eventLocked(t, "page", "candidate "+ro.cfg.PageRule+" burn firing")
	}
	switch ro.state {
	case RolloutShadowing:
		if paging {
			ro.rollbackLocked(t, "page burn while shadowing")
			break
		}
		if t-ro.stageStart >= ro.cfg.Shadow.Seconds() {
			ro.state = RolloutCanarying
			ro.stage = 0
			ro.stageStart = t
			ro.eventLocked(t, "stage", "shadow clean, canary begins")
		}
	case RolloutCanarying:
		if paging {
			ro.rollbackLocked(t, "page burn while canarying")
			break
		}
		if freezing != ro.frozen {
			ro.frozen = freezing
			if freezing {
				ro.eventLocked(t, "freeze", ro.cfg.FreezeRule+" burn firing")
			} else {
				ro.eventLocked(t, "unfreeze", ro.cfg.FreezeRule+" burn resolved")
			}
			// A freeze restarts the soak: the stage must hold clean for its
			// full duration after the burn resolves.
			ro.stageStart = t
		}
		if !ro.frozen && t-ro.stageStart >= ro.cfg.Stages[ro.stage].Hold.Seconds() {
			if ro.stage == len(ro.cfg.Stages)-1 {
				ro.state = RolloutPromoted
				ro.eventLocked(t, "promoted", "")
				break
			}
			ro.stage++
			ro.stageStart = t
			ro.eventLocked(t, "stage", "")
		}
	case RolloutRollingBack:
		if t-ro.rolledAt >= ro.cfg.DrainGrace.Seconds() {
			ro.completeRollbackLocked(t, "drain grace expired")
		}
	}
	return ro.state
}

// ruleFiringLocked reports whether the named rule is firing for any of the
// candidate's objectives.
func (ro *Rollout) ruleFiringLocked(rule string) bool {
	for _, pair := range ro.monitors[VersionCandidate].Firing() {
		if len(pair) > len(rule) && pair[len(pair)-len(rule):] == rule &&
			pair[len(pair)-len(rule)-1] == '/' {
			return true
		}
	}
	return false
}

// rollbackLocked reverts all traffic to baseline and starts the drain.
func (ro *Rollout) rollbackLocked(t float64, reason string) {
	ro.state = RolloutRollingBack
	ro.frozen = false
	ro.rolledAt = t
	ro.eventLocked(t, "rollback", reason)
}

// completeRollbackLocked finishes the rollback (terminal).
func (ro *Rollout) completeRollbackLocked(t float64, reason string) {
	ro.state = RolloutRolledBack
	ro.eventLocked(t, "rolled_back", reason)
}

// eventLocked appends one timeline event at the current stage/fraction.
func (ro *Rollout) eventLocked(t float64, kind, detail string) {
	frac := 0.0
	switch ro.state {
	case RolloutCanarying:
		frac = ro.cfg.Stages[ro.stage].Fraction
	case RolloutPromoted:
		frac = 1
	}
	ro.events = append(ro.events, RolloutEvent{
		T: t, Event: kind, Stage: ro.stage, Fraction: frac, Detail: detail,
	})
}
