// Package serve is the inference-serving subsystem: a production-shaped
// request path over a trained nn.Net built from a dynamic micro-batcher, a
// pool of model replicas with work stealing, and explicit admission control.
//
// The paper's driver problems do not end at training — a drug-response or
// surveillance model must answer single-sample queries under heavy open-loop
// traffic, and single-sample forward passes waste the GEMM kernels' blocking.
// The batcher therefore coalesces requests into tensor batches under a
// max-batch-size / max-linger policy; the replica pool runs N independent
// model clones on goroutines; and a bounded admission queue sheds load with
// typed errors (ErrOverloaded, ErrDeadline) instead of collapsing.
//
// Every time-dependent decision flows through an injected Clock, so the
// whole pipeline — linger flushes, deadline expiry, latency accounting — is
// testable on a VirtualClock with zero sleeps. Replica failures are scripted
// through a fault.Plan exactly like the elastic trainer's worker kills: a
// dying replica redistributes its backlog over the survivors, so no admitted
// request is ever lost to a kill.
package serve

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/fault"
	"repro/internal/nn"
	"repro/internal/obs"
	"repro/internal/rng"
)

// Typed serving errors. Callers distinguish shed load (retry later, the
// queue was full) from missed deadlines (the answer stopped mattering) from
// shutdown.
var (
	// ErrOverloaded reports that the bounded admission queue was full at
	// submit time; the request was shed without queuing.
	ErrOverloaded = errors.New("serve: overloaded, admission queue full")
	// ErrDeadline reports that the request's deadline expired before a
	// replica started executing its batch.
	ErrDeadline = errors.New("serve: deadline exceeded before execution")
	// ErrClosed reports a submit after Close.
	ErrClosed = errors.New("serve: server closed")
	// ErrBadInput reports a feature vector of the wrong dimensionality.
	ErrBadInput = errors.New("serve: input has wrong dimension")
)

// Config parameterises a Server. The zero value of every optional field is
// replaced by the documented default.
type Config struct {
	// Replicas is the number of independent model clones serving batches
	// (default 1). Each replica is one goroutine with its own nn.Net, so
	// forward passes never share layer caches.
	Replicas int
	// MaxBatch is the batch-size bound: a forming batch is dispatched as
	// soon as it holds this many requests (default 8).
	MaxBatch int
	// MaxLinger is the latency bound of batching: a forming batch is
	// dispatched once its oldest request has waited this long, full or not
	// (default 2ms).
	MaxLinger time.Duration
	// QueueCap bounds the admission queue. Submit sheds (ErrOverloaded)
	// when it is full; Infer blocks, which is the backpressure closed-loop
	// clients feel (default 64). A negative value makes the queue
	// unbuffered: a blocking submit then returns only at the rendezvous
	// with the batcher, which is what the deterministic virtual-clock
	// tests rely on.
	QueueCap int
	// MaxPendingBatches bounds the formed-but-unexecuted backlog across
	// the replica pool; when it is full the batcher itself stalls and the
	// admission queue fills behind it (default 2*Replicas).
	MaxPendingBatches int
	// InDim is the required feature dimensionality of every request.
	InDim int
	// Clock injects the time source (default the wall clock). Tests use a
	// VirtualClock so linger and deadline behaviour is deterministic.
	Clock Clock
	// Obs, if enabled, records queue depth, batch-size and latency
	// histograms, and shed/kill counters.
	Obs *obs.Session
	// Faults scripts replica kills and stalls: step n is the n-th batch
	// the replica starts (the same Plan type the elastic trainer uses).
	// A killed replica's backlog is redistributed over the survivors.
	// Plan.Degrade entries make a replica a gray straggler: every batch it
	// runs stalls (factor-1)*DegradeUnit before executing.
	Faults *fault.Plan
	// DegradeUnit is the per-batch time unit a DegradedWorker's slowdown
	// factor multiplies (default 1ms): a factor-10 replica stalls 9ms per
	// batch. On a VirtualClock the stall is virtual, so gray-straggler tests
	// stay sleep-free.
	DegradeUnit time.Duration
	// Hedge enables hedged execution (zero value: disabled). See HedgeConfig.
	Hedge HedgeConfig
	// Health enables replica health scoring with ejection and re-admission
	// (zero value: disabled). See HealthConfig.
	Health HealthConfig
	// Autoscale, when non-nil, runs the replica autoscaler on the control
	// loop: the pool grows toward Autoscale.Max and shrinks toward
	// Autoscale.Min around the configured Replicas starting point.
	Autoscale *AutoscaleConfig
	// Cache, when non-nil, puts an inference result cache in front of the
	// batcher (see ResultCacheConfig).
	Cache *ResultCacheConfig
	// CtrlEvery is the control-loop cadence for rollout and autoscaler
	// evaluation (default 250ms).
	CtrlEvery time.Duration
	// RouteSeed seeds the submit-time canary/shadow routing stream (default
	// 1) so versioned traffic splits are reproducible under a VirtualClock.
	RouteSeed uint64
}

func (c *Config) withDefaults() error {
	if c.Replicas <= 0 {
		c.Replicas = 1
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = 8
	}
	if c.MaxLinger <= 0 {
		c.MaxLinger = 2 * time.Millisecond
	}
	if c.QueueCap == 0 {
		c.QueueCap = 64
	}
	if c.QueueCap < 0 {
		c.QueueCap = 0 // unbuffered: see the QueueCap doc
	}
	if c.MaxPendingBatches <= 0 {
		c.MaxPendingBatches = 2 * c.Replicas
	}
	if c.InDim <= 0 {
		return fmt.Errorf("serve: config needs InDim > 0, got %d", c.InDim)
	}
	if c.Clock == nil {
		c.Clock = RealClock()
	}
	if c.Faults.NumKills() >= c.Replicas {
		return fmt.Errorf("serve: plan kills %d of %d replicas — no survivors",
			c.Faults.NumKills(), c.Replicas)
	}
	if c.DegradeUnit <= 0 {
		c.DegradeUnit = time.Millisecond
	}
	if c.Hedge.After < 0 {
		return fmt.Errorf("serve: negative hedge budget %v", c.Hedge.After)
	}
	if c.Autoscale != nil {
		if err := c.Autoscale.withDefaults(); err != nil {
			return err
		}
	}
	if c.Cache != nil {
		c.Cache.withDefaults()
	}
	if c.CtrlEvery <= 0 {
		c.CtrlEvery = 250 * time.Millisecond
	}
	if c.RouteSeed == 0 {
		c.RouteSeed = 1
	}
	c.Health.withDefaults()
	if c.Health.enabled() && c.Health.EjectFactor <= 1 {
		return fmt.Errorf("serve: health EjectFactor must exceed 1, got %g", c.Health.EjectFactor)
	}
	return nil
}

// Result is one request's outcome.
type Result struct {
	// Y is the model output row (nil when Err is set).
	Y []float64
	// Err is nil on success, else one of the typed serving errors.
	Err error
	// BatchSize is the size of the tensor batch this request rode in.
	BatchSize int
	// Latency is submit-to-completion time on the server's clock.
	Latency time.Duration
}

// request is one in-flight inference.
type request struct {
	x        []float64
	deadline time.Time // zero = none
	arrived  time.Time
	done     chan Result

	// trace is the request's trace context, minted at admission (or carried
	// in from the caller via SubmitCtx so retry attempts share one trace).
	// It rides the request through the batcher, replica, and hedge copies,
	// ending up as the exemplar on the latency-histogram bucket it lands in.
	trace obs.Ctx

	// Hedged execution can put the same request in two batches on two
	// replicas. settled arbitrates: the first fail/complete wins the CAS and
	// answers the caller; the loser is dropped (and counted). settledCh is
	// non-nil only when a hedge watcher is armed — settling closes it so the
	// watcher can stand down without a timer tick. hedged marks that a
	// duplicate was actually launched (the flow-event stitch point).
	settled   atomic.Bool
	settledCh chan struct{}
	hedged    atomic.Bool

	// Versioned rollout: which model version serves this request, and
	// whether it is a shadow duplicate (answer discarded, outcome recorded
	// against the candidate's SLO only). The server assigns version and
	// wantShadow at submit time (routeRequest), before the request enters any
	// concurrent path, so the hedge watcher and completing replica read them
	// race-free; the simulator assigns version at its own admission event.
	// Immutable after assignment.
	version    int
	shadow     bool
	wantShadow bool

	// ckey is the result-cache key (0 = no cache; cacheKey never returns 0).
	// Set at admission when the result cache is enabled so the winning
	// completion can populate the cache.
	ckey uint64

	// simDone is the load simulator's single-threaded "finally resolved"
	// flag (the event loop's analogue of settled + drop accounting).
	simDone bool
}

func (r *request) expired(now time.Time) bool {
	return !r.deadline.IsZero() && now.After(r.deadline)
}

// settle claims the exclusive right to answer this request. Exactly one
// caller ever wins.
func (r *request) settle() bool {
	if !r.settled.CompareAndSwap(false, true) {
		return false
	}
	if r.settledCh != nil {
		close(r.settledCh)
	}
	return true
}

// Server is the serving pipeline: admission queue -> micro-batcher ->
// replica pool. Construct with New, stop with Close.
type Server struct {
	cfg   Config
	clock Clock
	obs   *obs.Session

	in   chan *request
	pool *pool

	mu     sync.RWMutex // guards closed against concurrent sends on in
	closed bool

	batcherWG sync.WaitGroup
	hedgeWG   sync.WaitGroup

	// control plane (see control.go)
	start          time.Time
	rollout        atomic.Pointer[Rollout]
	scaler         *Autoscaler // touched only by the control goroutine
	ctrlOn         bool        // guarded by mu
	ctrlStop       chan struct{}
	ctrlWG         sync.WaitGroup
	routeMu        sync.Mutex // guards route against concurrent submitters
	route          *rng.Stream
	nCanaryInflight atomic.Int64
	nCanaryServed   atomic.Int64
	nShadowServed   atomic.Int64
	nScaleUps       atomic.Int64
	nScaleDowns     atomic.Int64

	// recent-latency ring feeding the autoscaler's p99 input
	latMu    sync.Mutex
	latRing  []float64
	latCount int

	// result cache (nil when cfg.Cache is nil)
	cache        *resultCache
	nCacheHits   atomic.Int64
	nCacheMisses atomic.Int64

	// counters (atomic; see Stats)
	nSubmitted      atomic.Int64
	nShed           atomic.Int64
	nExpired        atomic.Int64
	nCompleted      atomic.Int64
	nBatches        atomic.Int64
	nSamples        atomic.Int64
	nHedged         atomic.Int64
	nHedgeCancelled atomic.Int64
	nHedgeWasted    atomic.Int64
}

// Stats is a point-in-time snapshot of the server's counters.
type Stats struct {
	// Submitted counts requests accepted into the admission queue.
	Submitted int64
	// Shed counts requests rejected with ErrOverloaded.
	Shed int64
	// Expired counts requests failed with ErrDeadline.
	Expired int64
	// Completed counts requests answered successfully.
	Completed int64
	// Batches counts dispatched tensor batches; MeanBatch is the mean
	// number of requests per batch.
	Batches   int64
	MeanBatch float64
	// ReplicaKills counts replicas lost to the fault plan; Requeued counts
	// batches a dying replica handed to survivors; Steals counts batches a
	// replica took from another replica's queue.
	ReplicaKills int64
	Requeued     int64
	Steals       int64
	// LiveReplicas is the surviving replica count.
	LiveReplicas int
	// Hedged counts requests duplicated to a second replica after outliving
	// the hedge budget. HedgeCancelled counts duplicate copies a replica
	// discarded before the forward pass because the other copy had already
	// answered; HedgeWasted counts copies whose forward pass completed only
	// to lose the settle race (work truly burned twice).
	Hedged         int64
	HedgeCancelled int64
	HedgeWasted    int64
	// Ejections counts replicas ejected by health scoring, Readmissions how
	// many probes brought one back, HealthyReplicas the live non-ejected
	// count right now.
	Ejections       int64
	Readmissions    int64
	HealthyReplicas int
	// CanaryServed counts requests routed to a rollout candidate (including
	// shadow copies); ShadowServed the shadow copies among them.
	CanaryServed int64
	ShadowServed int64
	// CacheHits/CacheMisses count result-cache lookups (zero with no cache).
	CacheHits   int64
	CacheMisses int64
	// ScaleUps/ScaleDowns count autoscaler decisions applied to the pool.
	ScaleUps   int
	ScaleDowns int
}

// New builds a Server over net. The net is cloned once per replica; the
// caller's net is not used after New returns, so it can keep training.
func New(net *nn.Net, cfg Config) (*Server, error) {
	if net == nil {
		return nil, fmt.Errorf("serve: nil net")
	}
	if err := cfg.withDefaults(); err != nil {
		return nil, err
	}
	s := &Server{
		cfg:      cfg,
		clock:    cfg.Clock,
		obs:      cfg.Obs,
		in:       make(chan *request, cfg.QueueCap),
		start:    cfg.Clock.Now(),
		ctrlStop: make(chan struct{}),
		route:    rng.New(cfg.RouteSeed).Split("serve-route"),
	}
	if cfg.Autoscale != nil {
		as, err := NewAutoscaler(*cfg.Autoscale)
		if err != nil {
			return nil, err
		}
		s.scaler = as
		s.latRing = make([]float64, 256)
	}
	if cfg.Cache != nil {
		s.cache = newResultCache(*cfg.Cache)
	}
	// Pre-register every counter the pipeline can touch so a metrics dump
	// (OpenMetrics, SLO rules bound to counters) sees explicit zeros instead
	// of absent series on paths that never fired this run.
	if s.obs.Enabled() {
		for _, name := range []string{
			"serve.submitted", "serve.completed", "serve.shed",
			"serve.deadline_missed", "serve.batches", "serve.steals",
			"serve.requeued", "serve.replica_killed", "serve.hedged",
			"serve.hedge_cancelled", "serve.hedge_wasted",
			"serve.replica_ejected", "serve.replica_readmitted",
		} {
			s.obs.Count(name, 0)
		}
		s.obs.Flight.TriggerOn("replica_killed", "replica_ejected")
	}
	s.pool = newPool(s, net)
	s.batcherWG.Add(1)
	go func() {
		defer s.batcherWG.Done()
		s.batchLoop()
	}()
	if s.scaler != nil {
		s.mu.Lock()
		s.startCtrlLocked()
		s.mu.Unlock()
	}
	return s, nil
}

// Submit is the open-loop entry point: it never blocks. The returned channel
// (capacity 1) delivers the Result; a full admission queue delivers
// ErrOverloaded immediately.
func (s *Server) Submit(x []float64, deadline time.Time) <-chan Result {
	return s.SubmitCtx(x, deadline, obs.Ctx{})
}

// SubmitCtx is Submit with a caller-provided trace context: a Retrier
// passes the same context on every attempt so the whole retry chain shares
// one trace id. The zero Ctx mints a fresh trace at admission.
func (s *Server) SubmitCtx(x []float64, deadline time.Time, c obs.Ctx) <-chan Result {
	req := s.newRequest(x, deadline, c)
	done := req.done
	if len(x) != s.cfg.InDim {
		done <- Result{Err: ErrBadInput}
		return done
	}
	if s.cacheLookup(req) {
		return done
	}
	s.routeRequest(req)
	s.mu.RLock()
	if s.closed {
		s.mu.RUnlock()
		done <- Result{Err: ErrClosed}
		return done
	}
	select {
	case s.in <- req:
		s.mu.RUnlock()
		s.nSubmitted.Add(1)
		s.obs.Count("serve.submitted", 1)
		s.armHedge(req)
		s.observeQueueDepth()
	default:
		s.mu.RUnlock()
		s.nShed.Add(1)
		s.obs.Count("serve.shed", 1)
		s.obs.RecordFlight("shed", req.trace, "admission queue full")
		done <- Result{Err: ErrOverloaded}
	}
	return done
}

// Infer is the closed-loop entry point: it blocks for admission (the
// backpressure path — a full queue delays the caller instead of shedding)
// and then for the result.
func (s *Server) Infer(x []float64) ([]float64, error) {
	res := <-s.submitBlocking(x, time.Time{})
	return res.Y, res.Err
}

// InferDeadline is Infer with a completion deadline on the server's clock.
func (s *Server) InferDeadline(x []float64, deadline time.Time) Result {
	return <-s.submitBlocking(x, deadline)
}

func (s *Server) submitBlocking(x []float64, deadline time.Time) <-chan Result {
	req := s.newRequest(x, deadline, obs.Ctx{})
	done := req.done
	if len(x) != s.cfg.InDim {
		done <- Result{Err: ErrBadInput}
		return done
	}
	if s.cacheLookup(req) {
		return done
	}
	s.routeRequest(req)
	s.mu.RLock()
	if s.closed {
		s.mu.RUnlock()
		done <- Result{Err: ErrClosed}
		return done
	}
	s.in <- req // blocks under load: admission backpressure
	s.mu.RUnlock()
	s.nSubmitted.Add(1)
	s.obs.Count("serve.submitted", 1)
	s.armHedge(req)
	s.observeQueueDepth()
	return done
}

// newRequest builds one request; when hedging is enabled it carries a
// settledCh so the hedge watcher can be cancelled by the first answer. An
// invalid (zero) trace context mints a fresh trace.
func (s *Server) newRequest(x []float64, deadline time.Time, c obs.Ctx) *request {
	if !c.Valid() {
		c = s.obs.NewTrace()
	}
	req := &request{x: x, deadline: deadline, arrived: s.clock.Now(),
		done: make(chan Result, 1), trace: c}
	if s.cfg.Hedge.enabled() {
		req.settledCh = make(chan struct{})
	}
	return req
}

// Close stops admission, drains every queued request through the pipeline,
// and waits for the replicas to exit. Safe to call once.
func (s *Server) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	ctrlOn := s.ctrlOn
	close(s.in)
	s.mu.Unlock()
	// Stop the control loop first so no resize or rollout transition races
	// the drain below.
	if ctrlOn {
		close(s.ctrlStop)
		s.ctrlWG.Wait()
	}
	s.batcherWG.Wait()
	s.pool.close()
	// Every admitted request has now settled, so every hedge watcher has
	// either stood down via settledCh or had its late push refused by the
	// closed pool — the wait below cannot hang and leaves no goroutine behind.
	s.hedgeWG.Wait()
}

// Stats snapshots the server's counters.
func (s *Server) Stats() Stats {
	st := Stats{
		Submitted: s.nSubmitted.Load(),
		Shed:      s.nShed.Load(),
		Expired:   s.nExpired.Load(),
		Completed: s.nCompleted.Load(),
		Batches:   s.nBatches.Load(),
	}
	if st.Batches > 0 {
		st.MeanBatch = float64(s.nSamples.Load()) / float64(st.Batches)
	}
	st.Hedged = s.nHedged.Load()
	st.HedgeCancelled = s.nHedgeCancelled.Load()
	st.HedgeWasted = s.nHedgeWasted.Load()
	st.ReplicaKills, st.Requeued, st.Steals, st.LiveReplicas = s.pool.counters()
	st.Ejections, st.Readmissions, st.HealthyReplicas = s.pool.healthCounters()
	st.CanaryServed = s.nCanaryServed.Load()
	st.ShadowServed = s.nShadowServed.Load()
	st.CacheHits = s.nCacheHits.Load()
	st.CacheMisses = s.nCacheMisses.Load()
	st.ScaleUps = int(s.nScaleUps.Load())
	st.ScaleDowns = int(s.nScaleDowns.Load())
	return st
}

func (s *Server) observeQueueDepth() {
	if s.obs.Enabled() {
		s.obs.SetGauge("serve.queue_depth", float64(len(s.in)))
	}
}

// fail completes a request with an error, accounting it. With hedging, two
// copies of one request can both reach a failure path; only the settle
// winner answers (and is counted).
func (s *Server) fail(req *request, err error) {
	if !req.settle() {
		return
	}
	if req.version == VersionCandidate {
		s.nCanaryInflight.Add(-1)
	}
	if ro := s.rollout.Load(); ro != nil {
		ro.RecordServed(req.version, false, -1)
	}
	if req.shadow {
		// Shadow copies never answer callers; their failure was recorded
		// against the candidate's SLO above and that is their whole job.
		s.nShadowServed.Add(1)
		return
	}
	if err == ErrDeadline {
		s.nExpired.Add(1)
		s.obs.Count("serve.deadline_missed", 1)
		s.obs.RecordFlight("deadline_missed", req.trace, "")
	}
	req.done <- Result{Err: err}
}

// complete answers one request with its output row. A hedge copy that loses
// the settle race after paying for its forward pass is counted as wasted
// duplicated work and dropped — the caller already has the answer.
func (s *Server) complete(req *request, y []float64, batchSize int) {
	if !req.settle() {
		s.nHedgeWasted.Add(1)
		s.obs.Count("serve.hedge_wasted", 1)
		return
	}
	lat := s.clock.Now().Sub(req.arrived)
	if req.version == VersionCandidate {
		s.nCanaryInflight.Add(-1)
	}
	if ro := s.rollout.Load(); ro != nil {
		ro.RecordServed(req.version, true, lat.Seconds())
	}
	if req.shadow {
		s.nShadowServed.Add(1)
		return
	}
	s.noteLatencySample(lat)
	if s.cache != nil && req.ckey != 0 {
		s.cache.put(req.ckey, y, s.clock.Now())
	}
	s.nCompleted.Add(1)
	if s.obs.Enabled() {
		s.obs.Count("serve.completed", 1)
		s.obs.Observe("serve.latency", lat)
		s.obs.ObserveLatencyTrace("serve.latency.hist", lat, req.trace)
		if req.hedged.Load() {
			// Terminate the flow arrow the hedge watcher started: the
			// winning copy's completion is the stitch point.
			s.obs.FlowEnd(req.trace.Trace, hedgeTID, "hedge")
		}
	}
	req.done <- Result{Y: y, BatchSize: batchSize, Latency: lat}
}
