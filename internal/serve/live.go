package serve

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/nn"
	"repro/internal/rng"
)

// RunLive executes one load test against a real concurrent Server — real
// goroutines, real forward passes, the wall clock. It is the companion to
// RunLoad: the simulator proves the policy's shape bit-deterministically,
// the live run demonstrates the same server under true concurrency. Its
// latencies are therefore NOT reproducible across runs; committed benchmark
// artifacts come from RunLoad.
func RunLive(net *nn.Net, inDim int, cfg LoadConfig) (*LoadReport, error) {
	if err := cfg.withDefaults(); err != nil {
		return nil, err
	}
	srv, err := New(net, Config{
		Replicas:          cfg.Replicas,
		MaxBatch:          cfg.MaxBatch,
		MaxLinger:         cfg.MaxLinger,
		QueueCap:          cfg.QueueCap,
		MaxPendingBatches: cfg.MaxPendingBatches,
		InDim:             inDim,
	})
	if err != nil {
		return nil, err
	}
	defer srv.Close()

	r := rng.New(cfg.Seed).Split("serve-live")
	x := make([]float64, inDim)
	feat := r.Split("features")
	for i := range x {
		x[i] = feat.Float64()
	}

	start := time.Now()
	results := make(chan Result, cfg.Requests)
	var wg sync.WaitGroup

	if cfg.Closed {
		for c := 0; c < cfg.Clients; c++ {
			n := cfg.Requests / cfg.Clients
			if c < cfg.Requests%cfg.Clients {
				n++
			}
			think := r.Split(fmt.Sprintf("think%d", c))
			wg.Add(1)
			go func(n int, think *rng.Stream) {
				defer wg.Done()
				for i := 0; i < n; i++ {
					var dl time.Time
					if cfg.Deadline > 0 {
						dl = time.Now().Add(cfg.Deadline)
					}
					results <- <-srv.submitBlocking(x, dl)
					if cfg.ThinkMean > 0 {
						time.Sleep(time.Duration(think.Exp(1 / float64(cfg.ThinkMean))))
					}
				}
			}(n, think)
		}
	} else {
		arr := r.Split("arrivals")
		for i := 0; i < cfg.Requests; i++ {
			time.Sleep(time.Duration(arr.Exp(cfg.RatePerSec / float64(time.Second))))
			var dl time.Time
			if cfg.Deadline > 0 {
				dl = time.Now().Add(cfg.Deadline)
			}
			ch := srv.Submit(x, dl)
			wg.Add(1)
			go func() {
				defer wg.Done()
				results <- <-ch
			}()
		}
	}
	wg.Wait()
	close(results)
	wall := time.Since(start).Seconds()

	rep := &LoadReport{
		Seed:        cfg.Seed,
		Requests:    cfg.Requests,
		Replicas:    cfg.Replicas,
		MaxBatch:    cfg.MaxBatch,
		LingerMs:    float64(cfg.MaxLinger) / float64(time.Millisecond),
		QueueCap:    cfg.QueueCap,
		WallSeconds: wall,
	}
	rep.Mode = "open-live"
	rep.OfferedRPS = cfg.RatePerSec
	if cfg.Closed {
		rep.Mode = "closed-live"
		rep.OfferedRPS = 0
	}
	if cfg.Deadline > 0 {
		rep.DeadlineMs = float64(cfg.Deadline) / float64(time.Millisecond)
	}

	var latencies []float64
	for res := range results {
		switch res.Err {
		case nil:
			rep.Completed++
			latencies = append(latencies, res.Latency.Seconds())
		case ErrOverloaded:
			rep.Shed++
		case ErrDeadline:
			rep.Expired++
		default:
			return nil, fmt.Errorf("serve: live load run hit %w", res.Err)
		}
	}
	srv.Close()
	st := srv.Stats()
	rep.Batches = int(st.Batches)
	rep.MeanBatch = st.MeanBatch
	if wall > 0 {
		rep.ThroughputRPS = float64(rep.Completed) / wall
	}
	fillLatencies(rep, latencies)
	return rep, nil
}

// fillLatencies sorts the latency sample (seconds) into the report's
// millisecond summary fields.
func fillLatencies(rep *LoadReport, latencies []float64) {
	if len(latencies) == 0 {
		return
	}
	sorted := append([]float64(nil), latencies...)
	sort.Float64s(sorted)
	sum := 0.0
	for _, l := range sorted {
		sum += l
	}
	rep.LatencyMeanMs = sum / float64(len(sorted)) * 1e3
	rep.LatencyP50Ms = percentile(sorted, 0.50) * 1e3
	rep.LatencyP95Ms = percentile(sorted, 0.95) * 1e3
	rep.LatencyP99Ms = percentile(sorted, 0.99) * 1e3
	rep.LatencyMaxMs = sorted[len(sorted)-1] * 1e3
}
