package serve

import (
	"sync"
	"testing"
	"time"

	"repro/internal/fault"
	"repro/internal/leakcheck"
	"repro/internal/nn"
	"repro/internal/obs"
	"repro/internal/rng"
)

// candNet builds a candidate model distinct from testNet — same shape,
// different weights, so baseline and candidate answers differ.
func candNet(inDim int) *nn.Net {
	return nn.MLP(inDim, []int{4}, 2, nn.ReLU, rng.New(23))
}

// ctrlTick advances the virtual clock by exactly one control interval once
// the control goroutine (plus extra pre-armed timers) is parked on it.
func ctrlTick(vc *VirtualClock, every time.Duration, waiters int) {
	vc.BlockUntilWaiters(waiters)
	vc.Advance(every)
}

// TestServerResultCacheHitAndTTL: the second identical query is answered
// from the cache without a forward pass; after the TTL lapses the entry is
// stale and the query recomputes.
func TestServerResultCacheHitAndTTL(t *testing.T) {
	defer leakcheck.Check(t)()
	vc := NewVirtualClock(time.Unix(0, 0).UTC())
	srv, err := New(testNet(3), Config{
		InDim:    3,
		MaxBatch: 1,
		Clock:    vc,
		Cache:    &ResultCacheConfig{TTL: 500 * time.Millisecond},
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer srv.Close()

	x := []float64{1, 2, 3}
	y1, err := srv.Infer(x)
	if err != nil {
		t.Fatalf("Infer 1: %v", err)
	}
	y2, err := srv.Infer(x)
	if err != nil {
		t.Fatalf("Infer 2: %v", err)
	}
	for i := range y1 {
		if y1[i] != y2[i] {
			t.Fatalf("cached answer differs: %v vs %v", y1, y2)
		}
	}
	st := srv.Stats()
	if st.CacheHits != 1 || st.CacheMisses != 1 {
		t.Fatalf("hits=%d misses=%d after repeat query, want 1/1", st.CacheHits, st.CacheMisses)
	}
	if st.Completed != 1 {
		t.Fatalf("Completed = %d, want 1 (the hit must not reach a replica)", st.Completed)
	}

	// A different key is a miss even with the cache warm.
	if _, err := srv.Infer([]float64{4, 5, 6}); err != nil {
		t.Fatalf("Infer 3: %v", err)
	}
	if st := srv.Stats(); st.CacheMisses != 2 {
		t.Fatalf("misses = %d after distinct query, want 2", st.CacheMisses)
	}

	// Past the TTL the original entry is stale: recompute, not serve.
	vc.Advance(time.Second)
	if _, err := srv.Infer(x); err != nil {
		t.Fatalf("Infer 4: %v", err)
	}
	st = srv.Stats()
	if st.CacheHits != 1 || st.CacheMisses != 3 || st.Completed != 3 {
		t.Fatalf("stats after TTL = hits %d misses %d completed %d, want 1/3/3",
			st.CacheHits, st.CacheMisses, st.Completed)
	}
}

// TestServerDeployPromotesHealthyCandidate drives a clean candidate through
// the staged canary on the virtual clock: control ticks advance the stages,
// the rollout ends promoted, and new traffic then routes to the candidate.
func TestServerDeployPromotesHealthyCandidate(t *testing.T) {
	defer leakcheck.Check(t)()
	vc := NewVirtualClock(time.Unix(0, 0).UTC())
	srv, err := New(testNet(3), Config{
		InDim:     3,
		MaxBatch:  1,
		Clock:     vc,
		CtrlEvery: 100 * time.Millisecond,
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer srv.Close()

	ro, err := srv.Deploy(candNet(3), RolloutConfig{
		Stages: []RolloutStage{
			{Fraction: 0.5, Hold: 300 * time.Millisecond},
			{Fraction: 1.0, Hold: 300 * time.Millisecond},
		},
		Rules: obs.ScaledBurnRules(time.Second),
	})
	if err != nil {
		t.Fatalf("Deploy: %v", err)
	}
	if srv.Rollout() != ro {
		t.Fatal("Rollout() does not return the deployed controller")
	}
	// A second deploy while one is in flight must be refused.
	if _, err := srv.Deploy(candNet(3), RolloutConfig{}); err == nil {
		t.Fatal("concurrent Deploy accepted")
	}

	for i := 0; i < 50 && !ro.State().Terminal(); i++ {
		ctrlTick(vc, 100*time.Millisecond, 1)
	}
	if st := ro.State(); st != RolloutPromoted {
		t.Fatalf("clean candidate ended %s, want promoted", st)
	}
	if f := ro.CanaryFraction(); f != 1 {
		t.Fatalf("promoted canary fraction = %g, want 1", f)
	}

	// All post-promotion traffic is candidate traffic.
	for i := 0; i < 5; i++ {
		if _, err := srv.Infer([]float64{float64(i), 0, 0}); err != nil {
			t.Fatalf("Infer after promote: %v", err)
		}
	}
	st := srv.Stats()
	if st.CanaryServed != 5 || st.Completed != 5 {
		t.Fatalf("canary=%d completed=%d after promote, want 5/5", st.CanaryServed, st.Completed)
	}
}

// TestServerRollbackRevertsTraffic poisons the candidate's SLO and checks
// the control loop pages, rolls back, and pins all subsequent traffic to the
// baseline.
func TestServerRollbackRevertsTraffic(t *testing.T) {
	defer leakcheck.Check(t)()
	vc := NewVirtualClock(time.Unix(0, 0).UTC())
	srv, err := New(testNet(3), Config{
		InDim:     3,
		MaxBatch:  1,
		Clock:     vc,
		CtrlEvery: 100 * time.Millisecond,
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer srv.Close()

	ro, err := srv.Deploy(candNet(3), RolloutConfig{
		Stages: []RolloutStage{{Fraction: 0.5, Hold: time.Hour}},
		Rules: []obs.BurnRule{
			{Name: "fast", Long: 500 * time.Millisecond, Short: 100 * time.Millisecond, Factor: 2},
			{Name: "slow", Long: 500 * time.Millisecond, Short: 100 * time.Millisecond, Factor: 1e18},
		},
	})
	if err != nil {
		t.Fatalf("Deploy: %v", err)
	}

	// Report a burst of candidate failures into the rollout's SLO monitor
	// (the data path would do this on error completions).
	for i := 0; i < 20; i++ {
		ro.RecordServed(VersionCandidate, false, -1)
	}
	// One tick fires the page rule and starts reverting; the next sees the
	// canary drained (nothing in flight) and completes the rollback. The
	// extra BlockUntilWaiters after each advance waits for the control
	// goroutine to finish the step and re-arm its timer, so the state read
	// below is ordered after the step that produced it.
	for i := 0; i < 6 && ro.State() != RolloutRolledBack; i++ {
		ctrlTick(vc, 100*time.Millisecond, 1)
		vc.BlockUntilWaiters(1)
	}
	if st := ro.State(); st != RolloutRolledBack {
		t.Fatalf("state after breach = %s, want rolled_back", st)
	}
	if f := ro.CanaryFraction(); f != 0 {
		t.Fatalf("canary fraction after rollback = %g, want 0", f)
	}
	if _, ok := ro.TimeToDetect(); !ok {
		t.Fatal("no detection time recorded")
	}
	if _, ok := ro.TimeToRollback(); !ok {
		t.Fatal("no rollback time recorded")
	}

	// Every request after the rollback is served by the baseline.
	for i := 0; i < 10; i++ {
		if _, err := srv.Infer([]float64{float64(i), 0, 0}); err != nil {
			t.Fatalf("Infer after rollback: %v", err)
		}
	}
	st := srv.Stats()
	if st.CanaryServed != 0 {
		t.Fatalf("CanaryServed = %d after rollback, want 0", st.CanaryServed)
	}
	if st.Completed != 10 {
		t.Fatalf("Completed = %d, want 10", st.Completed)
	}

	// A terminal rollout can be replaced by a fresh deploy.
	if _, err := srv.Deploy(candNet(3), RolloutConfig{
		Stages: []RolloutStage{{Fraction: 1, Hold: time.Hour}},
		Rules:  obs.ScaledBurnRules(time.Second),
	}); err != nil {
		t.Fatalf("redeploy after rollback: %v", err)
	}
}

// TestServerAutoscaleGrowsAndShrinks wedges the only replica, piles up a
// queue, and checks the control loop grows the pool (new replicas steal and
// drain the backlog), then shrinks it back to Min once idle — all on the
// virtual clock, with leak checking across the spawn/retire lifecycle.
func TestServerAutoscaleGrowsAndShrinks(t *testing.T) {
	defer leakcheck.Check(t)()
	vc := NewVirtualClock(time.Unix(0, 0).UTC())
	srv, err := New(testNet(3), Config{
		InDim:             3,
		Replicas:          1,
		MaxBatch:          1,
		QueueCap:          64,
		MaxPendingBatches: 64,
		Clock:             vc,
		CtrlEvery:         100 * time.Millisecond,
		Faults:            fault.NewPlan().Hang(0, 0, time.Hour),
		Autoscale: &AutoscaleConfig{
			Min: 1, Max: 4,
			Every:     100 * time.Millisecond,
			QueueHigh: 1, QueueLow: 0.5,
			UtilLow: 0.9, UtilAlpha: 1,
		},
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer srv.Close()

	// 8 open-loop submits: replica 0 takes the first batch and hangs on it
	// for an hour; the other 7 park in the pool backlog.
	const n = 8
	results := make(chan Result, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		ch := srv.Submit([]float64{float64(i), 0, 0}, time.Time{})
		wg.Add(1)
		go func() {
			defer wg.Done()
			results <- <-ch
		}()
	}
	waitPending(srv.pool, n-1)

	// Two waiters: the hang timer and the control timer. One control tick
	// sees queue-per-healthy 7 and scales up; the new replicas steal the
	// parked batches and drain them with no further clock movement.
	ctrlTick(vc, 100*time.Millisecond, 2)
	for i := 0; i < n-1; i++ {
		if res := <-results; res.Err != nil {
			t.Fatalf("drained request failed: %v", res.Err)
		}
	}
	if st := srv.Stats(); st.ScaleUps < 1 || st.LiveReplicas < 2 {
		t.Fatalf("after burst: ups=%d live=%d, want a scale-up", st.ScaleUps, st.LiveReplicas)
	}

	// Idle ticks: hysteresis (down cooldown + up veto) takes a few, then the
	// pool shrinks one replica at a time back to Min.
	for i := 0; i < 60 && srv.Stats().LiveReplicas > 1; i++ {
		ctrlTick(vc, 100*time.Millisecond, 2)
	}
	st := srv.Stats()
	if st.LiveReplicas != 1 || st.ScaleDowns < 1 {
		t.Fatalf("after idle: live=%d downs=%d, want pool back at Min", st.LiveReplicas, st.ScaleDowns)
	}

	// Release the hung replica: the first request completes; nothing lost.
	vc.BlockUntilWaiters(2)
	vc.Advance(time.Hour)
	if res := <-results; res.Err != nil {
		t.Fatalf("unwedged request failed: %v", res.Err)
	}
	wg.Wait()
	if st := srv.Stats(); st.Completed != n {
		t.Fatalf("Completed = %d, want %d", st.Completed, n)
	}
}
