package serve

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/fault"
	"repro/internal/leakcheck"
	"repro/internal/obs"
)

// waitPending blocks (on the pool's condition variable, not a sleep) until
// the pool backlog holds at least n batches.
func waitPending(p *pool, n int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for p.pending < n {
		p.cond.Wait()
	}
}

// TestFaultReplicaKillRequeuesToSurvivor scripts a deterministic kill: with
// sequential single-request batches, placement always tie-breaks to replica
// 0, so the Kill(0, 2) plan fires exactly on the third request — which must
// still succeed, re-homed to replica 1.
func TestFaultReplicaKillRequeuesToSurvivor(t *testing.T) {
	vc := NewVirtualClock(time.Unix(0, 0).UTC())
	srv, err := New(testNet(3), Config{
		InDim:    3,
		Replicas: 2,
		MaxBatch: 1,
		Clock:    vc,
		Faults:   fault.NewPlan().Kill(0, 2),
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer srv.Close()

	for i := 0; i < 6; i++ {
		if _, err := srv.Infer([]float64{float64(i), 0, 0}); err != nil {
			t.Fatalf("Infer %d: %v (a replica kill must never lose an admitted request)", i, err)
		}
	}

	st := srv.Stats()
	if st.ReplicaKills != 1 {
		t.Fatalf("ReplicaKills = %d, want exactly 1", st.ReplicaKills)
	}
	if st.Requeued != 1 {
		t.Fatalf("Requeued = %d, want 1 (the in-flight batch of the dying replica)", st.Requeued)
	}
	if st.LiveReplicas != 1 {
		t.Fatalf("LiveReplicas = %d, want 1", st.LiveReplicas)
	}
	if st.Completed != 6 || st.Steals != 0 {
		t.Fatalf("stats = %+v, want 6 completed with no steals", st)
	}
}

// TestFaultHangThenStealRescuesBatch hangs both replicas, parks a batch in
// busy replica 0's queue, then releases only replica 1 — which must steal
// the parked batch rather than idle next to it. Every step synchronises on
// virtual-clock waiters or the pool condition variable.
func TestFaultHangThenStealRescuesBatch(t *testing.T) {
	vc := NewVirtualClock(time.Unix(0, 0).UTC())
	srv, err := New(testNet(3), Config{
		InDim:             3,
		Replicas:          2,
		MaxBatch:          1,
		MaxPendingBatches: 4,
		Clock:             vc,
		Faults: fault.NewPlan().
			Hang(0, 0, time.Hour).
			Hang(1, 0, 10*time.Millisecond),
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}

	x := []float64{1, 2, 3}
	chA := srv.Submit(x, time.Time{}) // replica 0 takes it and hangs
	vc.BlockUntilWaiters(1)
	chB := srv.Submit(x, time.Time{}) // replica 1 takes it and hangs
	vc.BlockUntilWaiters(2)
	chC := srv.Submit(x, time.Time{}) // parks in a queue: both loads tie at 1
	waitPending(srv.pool, 1)

	vc.Advance(10 * time.Millisecond) // release only replica 1
	if res := <-chB; res.Err != nil {
		t.Fatalf("request B: %v", res.Err)
	}
	if res := <-chC; res.Err != nil {
		t.Fatalf("request C (the batch that needed stealing): %v", res.Err)
	}

	vc.Advance(time.Hour) // release replica 0
	if res := <-chA; res.Err != nil {
		t.Fatalf("request A: %v", res.Err)
	}
	srv.Close()

	st := srv.Stats()
	if st.Steals != 1 {
		t.Fatalf("Steals = %d, want exactly 1 (replica 1 rescued the parked batch)", st.Steals)
	}
	if st.Completed != 3 || st.ReplicaKills != 0 {
		t.Fatalf("stats = %+v, want 3 completed and no kills", st)
	}
}

// TestChaosConcurrentClientsSurviveKill is the -race suite: many closed-loop
// clients hammer the server on the real scheduler while the fault plan kills
// a replica mid-load. Admitted requests must all succeed; totals must
// balance exactly.
//
// The plan also slows replicas 0 and 1 with scripted per-batch stalls. That
// keeps them busy while the first wave of batches arrives, which forces the
// least-loaded placement to route work to replica 2 — so its Kill(2, 1)
// step is reached on every scheduler interleaving, not just lucky ones.
func TestChaosConcurrentClientsSurviveKill(t *testing.T) {
	defer leakcheck.Check(t)() // kills + drains must leave no goroutine behind
	const (
		clients    = 16
		perClient  = 25
		totalInfer = clients * perClient
	)
	plan := fault.NewPlan().Kill(2, 1)
	for step := 0; step < totalInfer; step++ {
		plan.Hang(0, step, time.Millisecond)
		plan.Hang(1, step, time.Millisecond)
	}
	srv, err := New(testNet(3), Config{
		InDim:     3,
		Replicas:  3,
		MaxBatch:  4,
		MaxLinger: 200 * time.Microsecond,
		QueueCap:  32,
		Faults:    plan,
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}

	var wg sync.WaitGroup
	errs := make(chan error, totalInfer)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < perClient; i++ {
				y, err := srv.Infer([]float64{float64(c), float64(i), 1})
				if err != nil {
					errs <- err
				} else if len(y) != 2 {
					errs <- errors.New("wrong output dim")
				}
			}
		}(c)
	}
	wg.Wait()
	srv.Close()
	close(errs)
	for err := range errs {
		t.Fatalf("closed-loop Infer failed under chaos: %v", err)
	}

	st := srv.Stats()
	if st.Completed != totalInfer {
		t.Fatalf("completed = %d, want %d", st.Completed, totalInfer)
	}
	if st.Submitted != totalInfer {
		t.Fatalf("submitted = %d, want %d (Infer never sheds)", st.Submitted, totalInfer)
	}
	if st.ReplicaKills != 1 || st.LiveReplicas != 2 {
		t.Fatalf("kills=%d live=%d, want the scripted single kill", st.ReplicaKills, st.LiveReplicas)
	}
	if st.MeanBatch < 1 || st.MeanBatch > 4 {
		t.Fatalf("mean batch = %v, want within [1, MaxBatch=4]", st.MeanBatch)
	}
}

// TestChaosOpenLoopAccountingBalances floods Submit from many goroutines
// with a tiny queue; whatever interleaving the scheduler picks, every
// request must resolve and the counters must add up exactly.
func TestChaosOpenLoopAccountingBalances(t *testing.T) {
	defer leakcheck.Check(t)()
	srv, err := New(testNet(3), Config{
		InDim:             3,
		Replicas:          2,
		MaxBatch:          4,
		MaxLinger:         100 * time.Microsecond,
		QueueCap:          4,
		MaxPendingBatches: 1,
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}

	const (
		senders = 8
		each    = 100
		total   = senders * each
	)
	results := make(chan Result, total)
	var wg sync.WaitGroup
	for g := 0; g < senders; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				results <- <-srv.Submit([]float64{float64(g), float64(i), 0}, time.Time{})
			}
		}(g)
	}
	wg.Wait()
	srv.Close()
	close(results)

	var ok, shed int64
	for res := range results {
		switch {
		case res.Err == nil:
			ok++
		case errors.Is(res.Err, ErrOverloaded):
			shed++
		default:
			t.Fatalf("unexpected error: %v", res.Err)
		}
	}
	if ok+shed != total {
		t.Fatalf("ok(%d)+shed(%d) != %d", ok, shed, total)
	}
	st := srv.Stats()
	if st.Completed != ok || st.Shed != shed {
		t.Fatalf("stats %+v disagree with observed ok=%d shed=%d", st, ok, shed)
	}
	if st.Submitted != ok {
		t.Fatalf("submitted = %d, want %d (every admitted request completed)", st.Submitted, ok)
	}
}

// TestChaosKillDuringCanaryPromotion deploys a healthy candidate behind a
// fast canary schedule while concurrent clients hammer the server on the
// real clock, and a scripted fault kills a replica almost immediately — so
// the kill lands while the rollout is mid-flight. The properties under test:
// the rollout must still reach a terminal state (no wedge waiting on the
// dead replica), it must promote (a kill is an infrastructure fault, not a
// candidate SLO breach — re-homing means no request fails), every admitted
// request completes, and no goroutine leaks across the replica death, the
// control loop, and the rollout.
func TestChaosKillDuringCanaryPromotion(t *testing.T) {
	defer leakcheck.Check(t)()
	srv, err := New(testNet(3), Config{
		InDim:             3,
		Replicas:          4,
		MaxBatch:          4,
		MaxLinger:         time.Millisecond,
		QueueCap:          256,
		MaxPendingBatches: 16,
		CtrlEvery:         time.Millisecond,
		// Replica 0 is least-loaded placement's tie-break favourite, so its
		// 4th batch — and the kill — lands within the rollout's first
		// milliseconds, while stages are still advancing.
		Faults: fault.NewPlan().Kill(0, 3),
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer srv.Close()

	ro, err := srv.Deploy(candNet(3), RolloutConfig{
		Stages: []RolloutStage{
			{Fraction: 0.25, Hold: 2 * time.Millisecond},
			{Fraction: 1.0, Hold: 2 * time.Millisecond},
		},
		Shadow:     time.Millisecond,
		Rules:      obs.ScaledBurnRules(time.Second),
		DrainGrace: 2 * time.Millisecond,
	})
	if err != nil {
		t.Fatalf("Deploy: %v", err)
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	var sent, failed int64
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				atomic.AddInt64(&sent, 1)
				if _, err := srv.Infer([]float64{float64(g), float64(i), 0}); err != nil {
					atomic.AddInt64(&failed, 1)
				}
			}
		}(g)
	}

	// The rollout must terminate and the scripted kill must have fired; a
	// wedged promotion (e.g. the control loop waiting on the dead replica)
	// shows up here as the timeout.
	deadline := time.Now().Add(10 * time.Second)
	for !(ro.State().Terminal() && srv.Stats().ReplicaKills >= 1) {
		if time.Now().After(deadline) {
			t.Fatalf("rollout wedged: state=%s kills=%d after 10s",
				ro.State(), srv.Stats().ReplicaKills)
		}
		time.Sleep(time.Millisecond)
	}
	close(stop)
	wg.Wait()

	if st := ro.State(); st != RolloutPromoted {
		t.Fatalf("rollout ended %s, want promoted (a replica kill is not an SLO breach)", st)
	}
	if n := atomic.LoadInt64(&failed); n != 0 {
		t.Fatalf("%d of %d requests failed across the kill", n, atomic.LoadInt64(&sent))
	}
	st := srv.Stats()
	if st.ReplicaKills != 1 || st.LiveReplicas != 3 {
		t.Fatalf("kills=%d live=%d, want exactly one dead replica", st.ReplicaKills, st.LiveReplicas)
	}
	if st.CanaryServed == 0 {
		t.Fatal("no canary traffic observed during the rollout")
	}
}
