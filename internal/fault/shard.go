package fault

import (
	"fmt"
	"sort"

	"repro/internal/rng"
)

// ShardEventKind classifies a scripted event against a modelled node shard —
// the failure domain of the sharded multi-tenant campaign scheduler
// (core.RunFleet). A shard is a group of nodes behind one shard manager;
// shard-level faults are the campaign-scheduler analogue of the serving
// layer's replica kills and gray degradations.
type ShardEventKind int

const (
	// ShardKill takes the whole shard down at Time for Down seconds: every
	// evaluation running on it is interrupted and requeued (attempt history
	// intact), and its manager stops dispatching until the shard restores.
	// Queued work remains visible to work stealing while the shard is down.
	ShardKill ShardEventKind = iota
	// ShardDegrade is the gray failure: from Time on, evaluations dispatched
	// on the shard run Factor times slower (Factor > 1) without anything
	// reporting an error — the shard is slow, not dead.
	ShardDegrade
	// ShardRepair clears a previous ShardDegrade at Time (factor back to 1).
	ShardRepair
)

// String names the event kind.
func (k ShardEventKind) String() string {
	switch k {
	case ShardKill:
		return "shard-kill"
	case ShardDegrade:
		return "shard-degrade"
	case ShardRepair:
		return "shard-repair"
	default:
		return "shard?"
	}
}

// ShardEvent is one scripted shard-level fault.
type ShardEvent struct {
	// Shard is the target shard index.
	Shard int
	// Time is seconds from the start of the fleet run (simulated time).
	Time float64
	// Kind selects kill, gray degrade, or repair.
	Kind ShardEventKind
	// Down is the outage duration for ShardKill events (seconds, > 0).
	Down float64
	// Factor is the slowdown multiplier for ShardDegrade events (> 1).
	Factor float64
}

// ShardPlan scripts deterministic shard-level faults for a fleet run. Build
// the plan before the run starts; the scheduler reads it as a sorted
// timeline. The zero value (or nil) injects nothing.
type ShardPlan struct {
	Events []ShardEvent
}

// NewShardPlan returns an empty plan.
func NewShardPlan() *ShardPlan { return &ShardPlan{} }

// Kill schedules shard to go down at t for down seconds. Returns the plan
// for chaining.
func (p *ShardPlan) Kill(shard int, t, down float64) *ShardPlan {
	p.Events = append(p.Events, ShardEvent{Shard: shard, Time: t, Kind: ShardKill, Down: down})
	return p
}

// Degrade schedules a gray slowdown of the shard by factor from t on.
func (p *ShardPlan) Degrade(shard int, t, factor float64) *ShardPlan {
	p.Events = append(p.Events, ShardEvent{Shard: shard, Time: t, Kind: ShardDegrade, Factor: factor})
	return p
}

// Repair clears the shard's gray slowdown at t.
func (p *ShardPlan) Repair(shard int, t float64) *ShardPlan {
	p.Events = append(p.Events, ShardEvent{Shard: shard, Time: t, Kind: ShardRepair})
	return p
}

// Validate checks every event against the shard count and the per-kind
// parameter constraints.
func (p *ShardPlan) Validate(shards int) error {
	if p == nil {
		return nil
	}
	for i, ev := range p.Events {
		if ev.Shard < 0 || ev.Shard >= shards {
			return fmt.Errorf("fault: shard event %d targets shard %d of %d", i, ev.Shard, shards)
		}
		if ev.Time < 0 {
			return fmt.Errorf("fault: shard event %d at negative time %g", i, ev.Time)
		}
		switch ev.Kind {
		case ShardKill:
			if ev.Down <= 0 {
				return fmt.Errorf("fault: shard kill %d needs Down > 0", i)
			}
		case ShardDegrade:
			if ev.Factor <= 1 {
				return fmt.Errorf("fault: shard degrade %d needs Factor > 1, got %g", i, ev.Factor)
			}
		case ShardRepair:
			// no parameters
		default:
			return fmt.Errorf("fault: shard event %d has unknown kind %d", i, ev.Kind)
		}
	}
	return nil
}

// Sorted returns the events ordered by (time, shard, kind) — the replay
// order the fleet scheduler uses, stable for a given plan.
func (p *ShardPlan) Sorted() []ShardEvent {
	if p == nil {
		return nil
	}
	out := append([]ShardEvent(nil), p.Events...)
	sort.Slice(out, func(i, j int) bool {
		if out[i].Time != out[j].Time {
			return out[i].Time < out[j].Time
		}
		if out[i].Shard != out[j].Shard {
			return out[i].Shard < out[j].Shard
		}
		return out[i].Kind < out[j].Kind
	})
	return out
}

// NumKills counts the scripted shard outages.
func (p *ShardPlan) NumKills() int {
	if p == nil {
		return 0
	}
	n := 0
	for _, ev := range p.Events {
		if ev.Kind == ShardKill {
			n++
		}
	}
	return n
}

// RandomShardPlan derives a plan from a seeded stream: each shard suffers
// Poisson outages with the given mean time between kills over the horizon
// (outage length exponential with mean meanDown), and with probability
// degradeProb starts a gray slowdown of 1.5–4x at a uniform time, repaired
// halfway to the horizon later. Deterministic for a given stream state.
func RandomShardPlan(r *rng.Stream, shards int, horizon, mtbk, meanDown, degradeProb float64) (*ShardPlan, error) {
	if shards <= 0 || horizon <= 0 {
		return nil, fmt.Errorf("fault: RandomShardPlan needs shards and horizon > 0")
	}
	if mtbk <= 0 || meanDown <= 0 {
		return nil, fmt.Errorf("fault: RandomShardPlan needs mtbk and meanDown > 0")
	}
	if degradeProb < 0 || degradeProb > 1 {
		return nil, fmt.Errorf("fault: degradeProb %g outside [0,1]", degradeProb)
	}
	plan := NewShardPlan()
	for s := 0; s < shards; s++ {
		sr := r.SplitN(s)
		for t := sr.Exp(1 / mtbk); t < horizon; t += sr.Exp(1 / mtbk) {
			plan.Kill(s, t, sr.Exp(1/meanDown))
		}
		if degradeProb > 0 && sr.Bernoulli(degradeProb) {
			start := sr.Uniform(0, horizon/2)
			plan.Degrade(s, start, sr.Uniform(1.5, 4))
			plan.Repair(s, start+horizon/2)
		}
	}
	return plan, nil
}
