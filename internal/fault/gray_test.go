package fault

import "testing"

func TestPlanDegrade(t *testing.T) {
	p := NewPlan().Degrade(2, 10).Degrade(5, 1.5)
	if got := p.DegradeFactor(2); got != 10 {
		t.Fatalf("DegradeFactor(2) = %v, want 10", got)
	}
	if got := p.DegradeFactor(5); got != 1.5 {
		t.Fatalf("DegradeFactor(5) = %v, want 1.5", got)
	}
	if got := p.DegradeFactor(0); got != 1 {
		t.Fatalf("unscripted worker factor = %v, want 1", got)
	}
	if got := p.NumDegraded(); got != 2 {
		t.Fatalf("NumDegraded = %d, want 2", got)
	}
	p.Degrade(2, 1) // factor <= 1 clears the entry
	if got := p.DegradeFactor(2); got != 1 {
		t.Fatalf("cleared worker factor = %v, want 1", got)
	}
	if got := p.NumDegraded(); got != 1 {
		t.Fatalf("NumDegraded after clear = %d, want 1", got)
	}
}

func TestPlanDegradeNilSafe(t *testing.T) {
	var p *Plan
	if p.DegradeFactor(0) != 1 || p.NumDegraded() != 0 {
		t.Fatal("nil plan must report a healthy worker")
	}
}

func TestGrayKindStrings(t *testing.T) {
	want := map[Kind]string{
		DegradedWorker:   "degraded",
		FlakyLink:        "flaky-link",
		SilentCorruption: "silent-corruption",
		NodeCrash:        "crash",
		Kind(9999):       "fault?",
	}
	for k, s := range want {
		if k.String() != s {
			t.Fatalf("Kind(%d).String() = %q, want %q", k, k.String(), s)
		}
	}
}

func TestLinkFaultValidate(t *testing.T) {
	good := LinkFault{DropProb: 0.1, DupProb: 0.1, CorruptProb: 0.1, DelayProb: 0.2}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid link fault rejected: %v", err)
	}
	if !good.Active() {
		t.Fatal("non-zero link fault must be active")
	}
	if (LinkFault{}).Active() {
		t.Fatal("zero link fault must be inactive")
	}
	for _, bad := range []LinkFault{
		{DropProb: -0.1},
		{DropProb: 1},
		{DupProb: 1.5},
		{CorruptProb: -1},
		{DelayProb: 1},
		{DropProb: 0.6, CorruptProb: 0.6}, // cannot make progress
	} {
		if err := bad.Validate(); err == nil {
			t.Fatalf("invalid link fault %+v accepted", bad)
		}
	}
}
