package fault

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

func TestShardPlanValidate(t *testing.T) {
	p := NewShardPlan().Kill(0, 10, 5).Degrade(1, 3, 2).Repair(1, 8)
	if err := p.Validate(2); err != nil {
		t.Fatalf("valid plan rejected: %v", err)
	}
	if err := p.Validate(1); err == nil {
		t.Fatal("out-of-range shard accepted")
	}
	if err := NewShardPlan().Kill(0, 1, 0).Validate(1); err == nil {
		t.Fatal("zero-length outage accepted")
	}
	if err := NewShardPlan().Degrade(0, 1, 1).Validate(1); err == nil {
		t.Fatal("non-slowing degrade factor accepted")
	}
	if err := NewShardPlan().Kill(0, -1, 2).Validate(1); err == nil {
		t.Fatal("negative event time accepted")
	}
	var nilPlan *ShardPlan
	if err := nilPlan.Validate(4); err != nil {
		t.Fatalf("nil plan should validate: %v", err)
	}
	if nilPlan.NumKills() != 0 || nilPlan.Sorted() != nil {
		t.Fatal("nil plan not empty")
	}
}

func TestShardPlanSortedStable(t *testing.T) {
	p := NewShardPlan().Kill(1, 5, 1).Kill(0, 5, 1).Degrade(0, 2, 3)
	ev := p.Sorted()
	if len(ev) != 3 {
		t.Fatalf("got %d events", len(ev))
	}
	if ev[0].Kind != ShardDegrade || ev[1].Shard != 0 || ev[2].Shard != 1 {
		t.Fatalf("sort order wrong: %+v", ev)
	}
	// Sorted must not mutate the plan's own ordering.
	if p.Events[0].Shard != 1 {
		t.Fatal("Sorted mutated the plan")
	}
}

// Property: a random shard plan is deterministic in the seed, always
// validates against its own shard count, and every kill has a positive
// outage. quick.Check is explicitly seeded (same flake class as the
// internal/fault pin in PR 9) so -count=100 replays the same cases.
func TestQuickRandomShardPlan(t *testing.T) {
	f := func(seed uint64) bool {
		a, err := RandomShardPlan(rng.New(seed), 8, 1000, 300, 20, 0.3)
		if err != nil {
			return false
		}
		b, _ := RandomShardPlan(rng.New(seed), 8, 1000, 300, 20, 0.3)
		if len(a.Events) != len(b.Events) {
			return false
		}
		for i := range a.Events {
			if a.Events[i] != b.Events[i] {
				return false
			}
		}
		if a.Validate(8) != nil {
			return false
		}
		for _, ev := range a.Events {
			if ev.Kind == ShardKill && ev.Down <= 0 {
				return false
			}
			if ev.Time < 0 || ev.Time >= 1000 {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 40, Rand: rand.New(rand.NewSource(7))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestRandomShardPlanValidation(t *testing.T) {
	r := rng.New(1)
	if _, err := RandomShardPlan(r, 0, 100, 10, 5, 0); err == nil {
		t.Fatal("zero shards accepted")
	}
	if _, err := RandomShardPlan(r, 4, 100, 0, 5, 0); err == nil {
		t.Fatal("zero mtbk accepted")
	}
	if _, err := RandomShardPlan(r, 4, 100, 10, 5, 2); err == nil {
		t.Fatal("degradeProb > 1 accepted")
	}
}

func TestShardEventKindString(t *testing.T) {
	for k, want := range map[ShardEventKind]string{
		ShardKill: "shard-kill", ShardDegrade: "shard-degrade",
		ShardRepair: "shard-repair", ShardEventKind(99): "shard?",
	} {
		if got := k.String(); got != want {
			t.Fatalf("String(%d)=%q want %q", k, got, want)
		}
	}
}
