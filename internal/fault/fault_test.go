package fault

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

func TestProcessValidate(t *testing.T) {
	good := Process{Nodes: 4, MTBF: 100, Horizon: 1000}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	for _, bad := range []Process{
		{Nodes: 0, MTBF: 100, Horizon: 1000},
		{Nodes: 4, MTBF: 0, Horizon: 1000},
		{Nodes: 4, MTBF: 100, Horizon: 0},
		{Nodes: 4, MTBF: 100, Horizon: 1000, HangFraction: 1.5},
		{Nodes: 4, MTBF: 100, Horizon: 1000, HangFraction: 0.5},
	} {
		if err := bad.Validate(); err == nil {
			t.Fatalf("invalid process accepted: %+v", bad)
		}
	}
}

// Same seed ⇒ identical schedule, event for event.
func TestScheduleDeterministic(t *testing.T) {
	p := Process{Nodes: 16, MTBF: 300, Horizon: 3600, HangFraction: 0.3, MeanHang: 5}
	a, err := p.Schedule(rng.New(42))
	if err != nil {
		t.Fatal(err)
	}
	b, err := p.Schedule(rng.New(42))
	if err != nil {
		t.Fatal(err)
	}
	if len(a) == 0 {
		t.Fatal("expected events over a 12x-MTBF horizon")
	}
	if len(a) != len(b) {
		t.Fatalf("schedules differ in length: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("event %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
	c, err := p.Schedule(rng.New(43))
	if err != nil {
		t.Fatal(err)
	}
	if len(c) == len(a) {
		same := true
		for i := range a {
			if a[i] != c[i] {
				same = false
				break
			}
		}
		if same {
			t.Fatal("different seeds produced identical schedules")
		}
	}
}

// Property: event times are sorted and never exceed the horizon.
func TestScheduleSortedWithinHorizon(t *testing.T) {
	f := func(seed uint64, nodes8 uint8, mtbfMilli uint16, horizonMilli uint32) bool {
		p := Process{
			Nodes:   1 + int(nodes8%32),
			MTBF:    0.001 + float64(mtbfMilli)/1000,
			Horizon: 0.001 + float64(horizonMilli%100000)/1000,
		}
		events, err := p.Schedule(rng.New(seed))
		if err != nil {
			return false
		}
		prev := 0.0
		for _, ev := range events {
			if ev.Time < prev || ev.Time >= p.Horizon {
				return false
			}
			if ev.Node < 0 || ev.Node >= p.Nodes {
				return false
			}
			prev = ev.Time
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: the empirical mean inter-arrival time per node matches the MTBF
// within tolerance once the horizon holds many failures.
func TestScheduleRespectsMTBF(t *testing.T) {
	f := func(seed uint64, mtbfTick uint8) bool {
		mtbf := 10 + float64(mtbfTick%50)
		p := Process{Nodes: 8, MTBF: mtbf, Horizon: mtbf * 2000}
		events, err := p.Schedule(rng.New(seed))
		if err != nil {
			return false
		}
		// ~2000 failures expected per node; mean of n exponentials has
		// relative sd 1/sqrt(n) ≈ 2.2%, so 10% is a safe bound.
		perNode := make([]int, p.Nodes)
		for _, ev := range events {
			perNode[ev.Node]++
		}
		for _, c := range perNode {
			got := p.Horizon / float64(c)
			if math.Abs(got-mtbf)/mtbf > 0.10 {
				return false
			}
		}
		return true
	}
	// Fixed source: a 10% bound on a ~2.2%-sd statistic is safe for any
	// particular seed set but flaky over time-seeded draws.
	cfg := &quick.Config{MaxCount: 20, Rand: rand.New(rand.NewSource(1))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestScheduleHangEvents(t *testing.T) {
	p := Process{Nodes: 4, MTBF: 10, Horizon: 10000, HangFraction: 0.5, MeanHang: 3}
	events, err := p.Schedule(rng.New(7))
	if err != nil {
		t.Fatal(err)
	}
	crashes, hangs := 0, 0
	for _, ev := range events {
		switch ev.Kind {
		case NodeCrash:
			crashes++
			if ev.Duration != 0 {
				t.Fatal("crash with nonzero duration")
			}
		case WorkerHang:
			hangs++
			if ev.Duration <= 0 {
				t.Fatal("hang without duration")
			}
		}
	}
	if crashes == 0 || hangs == 0 {
		t.Fatalf("expected both kinds, got %d crashes / %d hangs", crashes, hangs)
	}
	frac := float64(hangs) / float64(crashes+hangs)
	if math.Abs(frac-0.5) > 0.1 {
		t.Fatalf("hang fraction %.2f far from 0.5", frac)
	}
}

// Property: attempt segments always end with the full duration when the
// evaluation completes, every crash segment is shorter than d, and the
// retry bound is respected.
func TestAttemptSegmentsProperties(t *testing.T) {
	f := func(seed uint64, dTick, mtbfTick uint8, maxRetries8 uint8) bool {
		d := 1 + float64(dTick%60)
		mtbf := 0.5 + float64(mtbfTick%40)
		maxRetries := int(maxRetries8 % 6)
		segs, completed := AttemptSegments(rng.New(seed), d, mtbf, maxRetries)
		if len(segs) == 0 {
			return false
		}
		if len(segs) > maxRetries+1 {
			return false
		}
		for i, s := range segs {
			last := i == len(segs)-1
			if last && completed {
				if s != d {
					return false
				}
			} else if s >= d || s < 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestAttemptSegmentsNoFaults(t *testing.T) {
	segs, completed := AttemptSegments(rng.New(1), 5, 0, 3)
	if !completed || len(segs) != 1 || segs[0] != 5 {
		t.Fatalf("mtbf=0 should disable failures, got %v %v", segs, completed)
	}
	segs, completed = AttemptSegments(rng.New(1), 0, 10, 3)
	if !completed || len(segs) != 0 {
		t.Fatalf("d=0 should be trivially complete, got %v %v", segs, completed)
	}
}

func TestSimulateCheckpointRunShape(t *testing.T) {
	// Reliable machine: wall time = work + checkpoint writes, no restarts.
	c := CheckpointRunConfig{Work: 1000, MTBF: 1e12, Interval: 100,
		CheckpointCost: 2, RestartCost: 5}
	wall := SimulateCheckpointRun(rng.New(1), c)
	want := 1000 + 9*2.0 // 10 segments, final one needs no checkpoint
	if math.Abs(wall-want) > 1e-9 {
		t.Fatalf("failure-free wall %v want %v", wall, want)
	}

	// Failing machine: checkpointing must beat restart-from-scratch.
	seeds := []uint64{1, 2, 3, 4, 5, 6, 7, 8}
	meanWall := func(interval float64) float64 {
		total := 0.0
		for _, s := range seeds {
			cfg := c
			cfg.MTBF = 400
			cfg.Interval = interval
			total += SimulateCheckpointRun(rng.New(s), cfg)
		}
		return total / float64(len(seeds))
	}
	if noCkpt, withCkpt := meanWall(0), meanWall(100); withCkpt >= noCkpt {
		t.Fatalf("checkpointing (%v) not better than restart-from-scratch (%v)", withCkpt, noCkpt)
	}
}

func TestSimulateCheckpointRunDeterministic(t *testing.T) {
	c := CheckpointRunConfig{Work: 5000, MTBF: 300, Interval: 60,
		CheckpointCost: 3, RestartCost: 10}
	a := SimulateCheckpointRun(rng.New(9), c)
	b := SimulateCheckpointRun(rng.New(9), c)
	if a != b {
		t.Fatalf("same seed gave %v then %v", a, b)
	}
	if a <= c.Work {
		t.Fatalf("wall %v cannot be below useful work %v", a, c.Work)
	}
}

func TestDalyInterval(t *testing.T) {
	got := DalyInterval(10, 2000)
	want := math.Sqrt(2*10*2000.0) - 10
	if math.Abs(got-want) > 1e-9 {
		t.Fatalf("daly interval %v want %v", got, want)
	}
	// Degenerate: never below the checkpoint cost itself.
	if DalyInterval(10, 0.1) < 10 {
		t.Fatal("daly interval collapsed below checkpoint cost")
	}
}

func TestPlanLookups(t *testing.T) {
	p := NewPlan().Kill(2, 7).Hang(1, 3, 40*1e6).FailCollective(5)
	if !p.KillAt(2, 7) || p.KillAt(2, 6) || p.KillAt(1, 7) {
		t.Fatal("KillAt wrong")
	}
	if p.HangAt(1, 3) == 0 || p.HangAt(1, 4) != 0 {
		t.Fatal("HangAt wrong")
	}
	if !p.CollectiveFailsAt(5) || p.CollectiveFailsAt(6) {
		t.Fatal("CollectiveFailsAt wrong")
	}
	if p.NumKills() != 1 {
		t.Fatalf("NumKills %d want 1", p.NumKills())
	}
	var nilPlan *Plan
	if nilPlan.KillAt(0, 0) || nilPlan.HangAt(0, 0) != 0 ||
		nilPlan.CollectiveFailsAt(0) || nilPlan.NumKills() != 0 {
		t.Fatal("nil plan must inject nothing")
	}
}

func TestRandomPlanDeterministic(t *testing.T) {
	proc := Process{Nodes: 8, MTBF: 50, Horizon: 500, HangFraction: 0.25, MeanHang: 1}
	a, err := RandomPlan(rng.New(3), proc, 100, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RandomPlan(rng.New(3), proc, 100, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if a.NumKills() != b.NumKills() {
		t.Fatalf("kill counts differ: %d vs %d", a.NumKills(), b.NumKills())
	}
	for w := 0; w < proc.Nodes; w++ {
		for s := 0; s < 100; s++ {
			if a.KillAt(w, s) != b.KillAt(w, s) || a.HangAt(w, s) != b.HangAt(w, s) {
				t.Fatalf("plans diverge at worker %d step %d", w, s)
			}
		}
	}
	if a.NumKills() == 0 {
		t.Fatal("10x-MTBF horizon should kill someone")
	}
	if _, err := RandomPlan(rng.New(3), proc, 0, 1.0); err == nil {
		t.Fatal("steps=0 accepted")
	}
}
