// Package fault is the robustness subsystem: seeded, deterministic failure
// injection for both the simulated campaign schedulers (internal/core) and
// the real goroutine trainers (internal/parallel), plus the checkpoint-
// interval mathematics (Young/Daly) that experiment E10 sweeps.
//
// At the scale the paper targets — tens of thousands of model
// configurations across thousands of nodes — the system mean time between
// failures is measured in minutes, so every layer above this package
// assumes evaluations can die mid-flight. All randomness flows through an
// explicit *rng.Stream: the same seed always yields the same failure
// schedule, which is what makes the chaos tests reproducible.
package fault

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"time"

	"repro/internal/rng"
)

// Kind enumerates the injectable failure classes.
type Kind int

const (
	// NodeCrash kills the node: work in flight is lost and must restart
	// (from scratch or from the last checkpoint).
	NodeCrash Kind = iota
	// WorkerHang stalls a worker for Duration — the straggler case; work is
	// not lost, just late.
	WorkerHang
	// CollectiveError is a transient failure of one gradient exchange; the
	// step retries and succeeds.
	CollectiveError
)

// String names the failure kind.
func (k Kind) String() string {
	switch k {
	case NodeCrash:
		return "crash"
	case WorkerHang:
		return "hang"
	case CollectiveError:
		return "collective"
	default:
		return grayString(k)
	}
}

// Event is one scheduled failure.
type Event struct {
	// Time is seconds from the start of the run (simulated time).
	Time float64
	// Node identifies the failing node or worker rank.
	Node int
	// Kind is the failure class.
	Kind Kind
	// Duration is the stall length for WorkerHang events; 0 otherwise.
	Duration float64
}

// Process describes independent per-node failure processes: each node fails
// as a Poisson process with the given mean time between failures, over a
// finite horizon.
type Process struct {
	// Nodes is the number of independent nodes.
	Nodes int
	// MTBF is the per-node mean time between failures in seconds.
	MTBF float64
	// Horizon bounds the schedule: no event is generated at or beyond it.
	Horizon float64
	// HangFraction is the probability a given event is a WorkerHang rather
	// than a NodeCrash (0 = crashes only).
	HangFraction float64
	// MeanHang is the mean stall duration for hang events (seconds).
	MeanHang float64
}

// Validate checks the process parameters.
func (p Process) Validate() error {
	if p.Nodes <= 0 {
		return fmt.Errorf("fault: process needs nodes > 0, got %d", p.Nodes)
	}
	if p.MTBF <= 0 {
		return fmt.Errorf("fault: process needs MTBF > 0, got %g", p.MTBF)
	}
	if p.Horizon <= 0 {
		return fmt.Errorf("fault: process needs horizon > 0, got %g", p.Horizon)
	}
	if p.HangFraction < 0 || p.HangFraction > 1 {
		return fmt.Errorf("fault: hang fraction %g outside [0,1]", p.HangFraction)
	}
	if p.HangFraction > 0 && p.MeanHang <= 0 {
		return fmt.Errorf("fault: hang events need MeanHang > 0")
	}
	return nil
}

// SystemMTBF returns the whole-machine mean time between failures:
// per-node MTBF divided by the node count.
func (p Process) SystemMTBF() float64 { return p.MTBF / float64(p.Nodes) }

// Schedule generates the deterministic failure schedule: exponential
// inter-arrival times per node, merged and sorted by (time, node). The same
// stream state always yields the identical schedule.
func (p Process) Schedule(r *rng.Stream) ([]Event, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	var events []Event
	for n := 0; n < p.Nodes; n++ {
		nr := r.SplitN(n)
		t := nr.Exp(1 / p.MTBF)
		for t < p.Horizon {
			ev := Event{Time: t, Node: n, Kind: NodeCrash}
			if p.HangFraction > 0 && nr.Bernoulli(p.HangFraction) {
				ev.Kind = WorkerHang
				ev.Duration = nr.Exp(1 / p.MeanHang)
			}
			events = append(events, ev)
			t += nr.Exp(1 / p.MTBF)
		}
	}
	sort.Slice(events, func(i, j int) bool {
		if events[i].Time != events[j].Time {
			return events[i].Time < events[j].Time
		}
		return events[i].Node < events[j].Node
	})
	return events, nil
}

// AttemptSegments splits one evaluation of useful length d into the
// execution segments a fail-from-scratch retry loop produces on a node with
// exponential failures of the given MTBF. Every returned segment except
// possibly the last ends in a crash; the last equals d when completed is
// true. maxRetries bounds the number of restarts (so at most maxRetries+1
// segments); maxRetries < 0 means retry until completion — with a backstop
// of 2^20 attempts, because when d >> MTBF the completion probability
// e^(-d/MTBF) makes success astronomically unlikely and the loop would
// otherwise spin effectively forever. Lost work is sum(segments) - d for a
// completed evaluation.
func AttemptSegments(r *rng.Stream, d, mtbf float64, maxRetries int) (segs []float64, completed bool) {
	if d <= 0 {
		return nil, true
	}
	if mtbf <= 0 {
		return []float64{d}, true
	}
	const maxAttempts = 1 << 20
	for attempt := 0; attempt < maxAttempts; attempt++ {
		crash := r.Exp(1 / mtbf)
		if crash >= d {
			return append(segs, d), true
		}
		segs = append(segs, crash)
		if maxRetries >= 0 && attempt >= maxRetries {
			return segs, false
		}
	}
	return segs, false
}

// CheckpointRunConfig describes one long training job under periodic
// checkpointing on a failing machine — the Young/Daly setting E10 sweeps.
type CheckpointRunConfig struct {
	// Work is the useful compute the job needs, in seconds.
	Work float64
	// MTBF is the system mean time between failures (per-node MTBF divided
	// by node count), in seconds.
	MTBF float64
	// Interval is the useful-work seconds between checkpoints. <= 0 means
	// never checkpoint: a failure restarts the job from the beginning.
	Interval float64
	// CheckpointCost is the wall-clock cost of writing one checkpoint.
	CheckpointCost float64
	// RestartCost is the wall-clock cost of recovering after a failure
	// (relaunch + read the last checkpoint).
	RestartCost float64
}

// SimulateCheckpointRun plays the job forward against exponentially
// distributed failures and returns the total wall-clock seconds. A failure
// loses all work since the last completed checkpoint. Deterministic for a
// given stream state.
func SimulateCheckpointRun(r *rng.Stream, c CheckpointRunConfig) float64 {
	interval := c.Interval
	if interval <= 0 || interval > c.Work {
		interval = c.Work
	}
	wall := 0.0
	committed := 0.0
	failAt := r.Exp(1 / c.MTBF)
	// Cap the failure count so a pathological configuration (segment much
	// longer than MTBF — e.g. never checkpointing a job that spans many
	// system MTBFs) degrades to +Inf instead of spinning.
	for failures := 0; failures < 100_000; {
		seg := math.Min(interval, c.Work-committed)
		segEnd := wall + seg
		if committed+seg < c.Work {
			segEnd += c.CheckpointCost // final segment needs no checkpoint
		}
		if failAt >= segEnd {
			wall = segEnd
			committed += seg
			if committed >= c.Work {
				return wall
			}
			continue
		}
		failures++
		wall = failAt + c.RestartCost
		failAt = wall + r.Exp(1/c.MTBF)
	}
	return math.Inf(1)
}

// DalyInterval returns Daly's first-order optimal checkpoint interval
// sqrt(2 * checkpointCost * mtbf) - checkpointCost (clamped to be
// positive), the analytic optimum E10's sweep should bracket.
func DalyInterval(checkpointCost, mtbf float64) float64 {
	opt := math.Sqrt(2*checkpointCost*mtbf) - checkpointCost
	if opt < checkpointCost {
		opt = checkpointCost
	}
	return opt
}

// Plan scripts deterministic failures for the real goroutine trainers:
// which worker dies at which global step, who straggles and for how long,
// and which steps suffer a transient collective error. Build the plan
// before training starts; reads are then safe from any number of worker
// goroutines because the plan is immutable during the run.
type Plan struct {
	kills map[int]int // worker -> global step at which it dies
	hangs map[planKey]time.Duration
	coll  map[int]bool // global step -> one transient collective failure

	// degrade is guarded by degradeMu: unlike kills/hangs (scripted before a
	// run starts), a gray slowdown may be repaired mid-run — the health
	// re-admission tests clear it while replicas are still probing.
	degradeMu sync.RWMutex
	degrade   map[int]float64 // worker -> persistent gray slowdown factor
}

type planKey struct{ worker, step int }

// NewPlan returns an empty failure plan (inject nothing).
func NewPlan() *Plan {
	return &Plan{
		kills:   map[int]int{},
		hangs:   map[planKey]time.Duration{},
		coll:    map[int]bool{},
		degrade: map[int]float64{},
	}
}

// Kill schedules worker to die at the given global step (it computes that
// step's gradient, then disappears before contributing it). Returns the
// plan for chaining.
func (p *Plan) Kill(worker, step int) *Plan {
	p.kills[worker] = step
	return p
}

// Hang schedules worker to stall for d at the given global step.
func (p *Plan) Hang(worker, step int, d time.Duration) *Plan {
	p.hangs[planKey{worker, step}] = d
	return p
}

// FailCollective schedules one transient gradient-exchange failure at the
// given global step; the trainer retries the exchange and succeeds.
func (p *Plan) FailCollective(step int) *Plan {
	p.coll[step] = true
	return p
}

// KillAt reports whether worker dies at this global step.
func (p *Plan) KillAt(worker, step int) bool {
	if p == nil {
		return false
	}
	s, ok := p.kills[worker]
	return ok && s == step
}

// HangAt returns the stall duration for worker at this step (0 = none).
func (p *Plan) HangAt(worker, step int) time.Duration {
	if p == nil {
		return 0
	}
	return p.hangs[planKey{worker, step}]
}

// CollectiveFailsAt reports whether the step's first gradient exchange
// fails transiently.
func (p *Plan) CollectiveFailsAt(step int) bool {
	return p != nil && p.coll[step]
}

// NumKills returns how many worker deaths the plan scripts.
func (p *Plan) NumKills() int {
	if p == nil {
		return 0
	}
	return len(p.kills)
}

// RandomPlan derives a plan from a failure process over a run of the given
// worker count and step count: each scheduled NodeCrash whose node maps to
// a live worker kills it at the step proportional to the event time, and
// WorkerHang events become stalls. stepWall is the assumed wall-clock
// seconds per step used to map event times onto steps. Deterministic for a
// given stream state.
func RandomPlan(r *rng.Stream, proc Process, steps int, stepWall float64) (*Plan, error) {
	if steps <= 0 || stepWall <= 0 {
		return nil, fmt.Errorf("fault: RandomPlan needs steps and stepWall > 0")
	}
	events, err := proc.Schedule(r)
	if err != nil {
		return nil, err
	}
	plan := NewPlan()
	for _, ev := range events {
		step := int(ev.Time / stepWall)
		if step >= steps {
			continue
		}
		switch ev.Kind {
		case NodeCrash:
			if _, dead := plan.kills[ev.Node]; !dead {
				plan.Kill(ev.Node, step)
			}
		case WorkerHang:
			plan.Hang(ev.Node, step, time.Duration(ev.Duration*float64(time.Second)))
		}
	}
	return plan, nil
}
