package fault

import "fmt"

// Gray failures — the taxonomy this file adds to the crash/hang/collective
// kinds in fault.go — are the failures that do not kill anything. A worker
// that is persistently 10x slower, a link that drops or duplicates one
// message in twenty, a fabric that flips a bit in a payload: at the scale
// the paper targets these cost more delivered throughput than outright
// crashes, because nothing detects them for free. Patton et al. report that
// sustaining 27k-GPU CANDLE runs hinges on tolerating exactly this class of
// degradation.
//
// The taxonomy has three members:
//
//   - DegradedWorker: a worker (or serving replica) that stays alive but
//     runs at a persistent seeded slowdown factor. Scripted per worker via
//     Plan.Degrade; consumed by internal/serve (health scoring, hedging)
//     and the serving load simulator.
//   - FlakyLink: a point-to-point link that delays, drops, or duplicates
//     frames. Described by LinkFault; consumed by internal/comm, which
//     CRC-frames traffic and retransmits around the injected loss.
//   - SilentCorruption: a bit flip in a payload in transit. Also part of
//     LinkFault (CorruptProb); internal/comm detects it by CRC mismatch at
//     the receiver and recovers by retransmission — the payload is never
//     delivered silently wrong.
//
// Everything is seeded: the same seed produces the same degradation, the
// same dropped frames, the same flipped bits, which is what keeps the gray
// chaos suites deterministic under -race.

// Gray-failure kinds, extending the crash taxonomy in fault.go. Process
// schedules never emit these — they are persistent conditions scripted via
// Plan.Degrade (DegradedWorker) or LinkFault (FlakyLink, SilentCorruption),
// not point events — but they share the Kind namespace so observability and
// reports can name every injected failure class uniformly.
const (
	// DegradedWorker marks a persistently slow (but alive and correct)
	// worker: everything it does takes Factor times longer.
	DegradedWorker Kind = iota + 100
	// FlakyLink marks a lossy point-to-point link: frames may be delayed,
	// dropped, or duplicated in transit.
	FlakyLink
	// SilentCorruption marks in-transit payload corruption: a bit flip that
	// no layer reports unless the receiver checks for it.
	SilentCorruption
	// BadVersion marks a model deployment that answers a seeded fraction of
	// its requests wrongly or not at all — the "bad push" a versioned rollout
	// exists to catch. Scripted via VersionFault; consumed by the serving
	// rollout controller's canary SLO monitors.
	BadVersion
	// LatencyRegression marks a model deployment that is correct but
	// persistently slower than the baseline it replaces — the gray cousin of
	// BadVersion. Also scripted via VersionFault.
	LatencyRegression
)

// grayString names the gray kinds (called from Kind.String in fault.go).
func grayString(k Kind) string {
	switch k {
	case DegradedWorker:
		return "degraded"
	case FlakyLink:
		return "flaky-link"
	case SilentCorruption:
		return "silent-corruption"
	case BadVersion:
		return "bad-version"
	case LatencyRegression:
		return "latency-regression"
	default:
		return "fault?"
	}
}

// VersionFault describes what is wrong with a candidate model version: a
// seeded per-request error rate (BadVersion — the canary's availability
// objective burns), a service-time multiplier (LatencyRegression — the
// canary's latency objective burns), or both. The zero value is a healthy
// version. Consumed by the serving rollout controller and its load
// simulator: the same seed deploys the same poison, which is what makes
// time-to-detect and time-to-rollback reproducible numbers rather than
// anecdotes.
type VersionFault struct {
	// ErrorRate is the probability a request served by this version fails
	// (seeded per request). 0 = never.
	ErrorRate float64
	// LatencyFactor multiplies the version's service time; values <= 1 mean
	// no regression.
	LatencyFactor float64
}

// Validate checks the version-fault parameters.
func (v VersionFault) Validate() error {
	if v.ErrorRate < 0 || v.ErrorRate >= 1 {
		return fmt.Errorf("fault: version error rate %g outside [0,1)", v.ErrorRate)
	}
	if v.LatencyFactor < 0 {
		return fmt.Errorf("fault: negative version latency factor %g", v.LatencyFactor)
	}
	return nil
}

// Active reports whether the version injects any fault at all.
func (v VersionFault) Active() bool {
	return v.ErrorRate > 0 || v.LatencyFactor > 1
}

// Degrade scripts a persistent gray slowdown: every unit of work worker
// does takes factor times as long as a healthy worker's, for the whole run
// (contrast Hang, which stalls one step). factor <= 1 clears the entry.
// Returns the plan for chaining.
func (p *Plan) Degrade(worker int, factor float64) *Plan {
	p.degradeMu.Lock()
	defer p.degradeMu.Unlock()
	if factor <= 1 {
		delete(p.degrade, worker)
		return p
	}
	p.degrade[worker] = factor
	return p
}

// DegradeFactor returns worker's slowdown factor (1 = healthy).
func (p *Plan) DegradeFactor(worker int) float64 {
	if p == nil {
		return 1
	}
	p.degradeMu.RLock()
	defer p.degradeMu.RUnlock()
	if f, ok := p.degrade[worker]; ok {
		return f
	}
	return 1
}

// NumDegraded returns how many workers the plan degrades.
func (p *Plan) NumDegraded() int {
	if p == nil {
		return 0
	}
	p.degradeMu.RLock()
	defer p.degradeMu.RUnlock()
	return len(p.degrade)
}

// LinkFault describes a flaky point-to-point fabric: each frame in transit
// is independently (and deterministically, per seeded link stream) subject
// to delay, drop, duplication, and silent single-bit corruption. Consumed
// by comm.World.SetLinkFaults, whose CRC framing turns SilentCorruption
// into detected-and-retransmitted frames.
type LinkFault struct {
	// DropProb is the probability a frame is lost in transit. The sender's
	// (modelled) ack timeout fires and the frame is retransmitted.
	DropProb float64
	// DupProb is the probability a frame is delivered twice. The receiver
	// deduplicates by sequence number.
	DupProb float64
	// CorruptProb is the probability one seeded bit of the frame is flipped
	// in transit. The receiver detects the flip by CRC mismatch, discards
	// the frame, and the sender retransmits.
	CorruptProb float64
	// DelayProb is the probability a frame's delivery is delayed. Links are
	// FIFO, so on an in-process fabric a delay cannot reorder frames; it is
	// injected as scheduler yields at the sender, which perturbs goroutine
	// interleavings (the observable effect of latency jitter here) and is
	// counted in the link stats.
	DelayProb float64
}

// Validate checks the link-fault probabilities. Each must sit in [0, 1),
// and DropProb+CorruptProb must leave room for a frame to eventually get
// through (retransmission would otherwise loop forever).
func (l LinkFault) Validate() error {
	for _, p := range []struct {
		name string
		v    float64
	}{
		{"DropProb", l.DropProb},
		{"DupProb", l.DupProb},
		{"CorruptProb", l.CorruptProb},
		{"DelayProb", l.DelayProb},
	} {
		if p.v < 0 || p.v >= 1 {
			return fmt.Errorf("fault: link %s %g outside [0,1)", p.name, p.v)
		}
	}
	if l.DropProb+l.CorruptProb > 0.95 {
		return fmt.Errorf("fault: link loses %g of frames — retransmission cannot make progress",
			l.DropProb+l.CorruptProb)
	}
	return nil
}

// Active reports whether the link injects any fault at all.
func (l LinkFault) Active() bool {
	return l.DropProb > 0 || l.DupProb > 0 || l.CorruptProb > 0 || l.DelayProb > 0
}
