package comm

import (
	"math"
	"sync/atomic"
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

func TestSendRecvBasic(t *testing.T) {
	w := NewWorld(2)
	w.Run(func(r *Rank) {
		if r.ID() == 0 {
			r.Send(1, 7, []float64{1, 2, 3})
		} else {
			got := r.Recv(0, 7)
			if len(got) != 3 || got[2] != 3 {
				t.Errorf("recv got %v", got)
			}
		}
	})
	if w.Stats(0).MsgsSent != 1 || w.Stats(0).BytesSent != 24 {
		t.Fatalf("stats %+v", w.Stats(0))
	}
}

func TestSendCopiesData(t *testing.T) {
	w := NewWorld(2)
	w.Run(func(r *Rank) {
		if r.ID() == 0 {
			buf := []float64{1}
			r.Send(1, 0, buf)
			buf[0] = 99 // mutate after send; receiver must not see it
		} else {
			if got := r.Recv(0, 0); got[0] != 1 {
				t.Errorf("send did not copy: %v", got)
			}
		}
	})
}

func TestTagMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("tag mismatch did not panic")
		}
	}()
	w := NewWorld(2)
	w.Run(func(r *Rank) {
		if r.ID() == 0 {
			r.Send(1, 1, nil)
		} else {
			r.Recv(0, 2)
		}
	})
}

func TestBarrierOrdering(t *testing.T) {
	for _, p := range []int{1, 2, 3, 4, 7, 8} {
		w := NewWorld(p)
		var before, after int64
		w.Run(func(r *Rank) {
			atomic.AddInt64(&before, 1)
			r.Barrier()
			if atomic.LoadInt64(&before) != int64(p) {
				t.Errorf("rank %d passed barrier before all %d entered", r.ID(), p)
			}
			atomic.AddInt64(&after, 1)
		})
		if after != int64(p) {
			t.Fatalf("only %d ranks finished", after)
		}
	}
}

func TestBroadcastAllSizesAndRoots(t *testing.T) {
	for _, p := range []int{1, 2, 3, 4, 5, 8, 13} {
		for root := 0; root < p; root += 2 {
			w := NewWorld(p)
			w.Run(func(r *Rank) {
				var data []float64
				if r.ID() == root {
					data = []float64{3.5, -1, float64(root)}
				}
				got := r.Broadcast(root, data)
				if len(got) != 3 || got[0] != 3.5 || got[2] != float64(root) {
					t.Errorf("p=%d root=%d rank=%d got %v", p, root, r.ID(), got)
				}
			})
		}
	}
}

func TestReduceSums(t *testing.T) {
	for _, p := range []int{1, 2, 3, 4, 6, 8, 9} {
		for root := 0; root < p; root += 3 {
			w := NewWorld(p)
			w.Run(func(r *Rank) {
				data := []float64{float64(r.ID()), 1}
				got := r.Reduce(root, data)
				if r.ID() == root {
					wantSum := float64(p*(p-1)) / 2
					if got[0] != wantSum || got[1] != float64(p) {
						t.Errorf("p=%d root=%d got %v", p, root, got)
					}
				} else if got != nil {
					t.Errorf("non-root returned %v", got)
				}
			})
		}
	}
}

func checkAllReduce(t *testing.T, p, n int, algo AllReduceAlgorithm) {
	t.Helper()
	w := NewWorld(p)
	// Reference: sum over ranks of rank-specific vectors.
	want := make([]float64, n)
	vecs := make([][]float64, p)
	for id := 0; id < p; id++ {
		r := rng.New(uint64(1000*p + 10*n + id))
		vecs[id] = make([]float64, n)
		for i := range vecs[id] {
			vecs[id][i] = r.Uniform(-1, 1)
			want[i] += vecs[id][i]
		}
	}
	w.Run(func(r *Rank) {
		data := make([]float64, n)
		copy(data, vecs[r.ID()])
		r.AllReduce(data, algo)
		for i := range data {
			if math.Abs(data[i]-want[i]) > 1e-9 {
				t.Errorf("algo=%v p=%d n=%d rank=%d elem %d: got %v want %v",
					algo, p, n, r.ID(), i, data[i], want[i])
				return
			}
		}
	})
}

func TestAllReduceAllAlgorithms(t *testing.T) {
	algos := []AllReduceAlgorithm{ARRing, ARRecursiveDoubling, ARTree, ARRabenseifner}
	for _, algo := range algos {
		for _, p := range []int{1, 2, 3, 4, 5, 8, 16} {
			for _, n := range []int{1, 3, 16, 33, 100} {
				checkAllReduce(t, p, n, algo)
			}
		}
	}
}

// Property: allreduce result equals elementwise sum for random sizes.
func TestQuickAllReduce(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		p := 1 + r.Intn(9)
		n := 1 + r.Intn(50)
		algo := AllReduceAlgorithm(r.Intn(4))
		ok := true
		w := NewWorld(p)
		want := make([]float64, n)
		vecs := make([][]float64, p)
		for id := 0; id < p; id++ {
			vecs[id] = make([]float64, n)
			for i := range vecs[id] {
				vecs[id][i] = r.Norm()
				want[i] += vecs[id][i]
			}
		}
		w.Run(func(rank *Rank) {
			data := append([]float64(nil), vecs[rank.ID()]...)
			rank.AllReduce(data, algo)
			for i := range data {
				if math.Abs(data[i]-want[i]) > 1e-9 {
					ok = false
					return
				}
			}
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestAllGather(t *testing.T) {
	for _, p := range []int{1, 2, 3, 5, 8} {
		w := NewWorld(p)
		w.Run(func(r *Rank) {
			data := []float64{float64(r.ID()), float64(r.ID() * 10)}
			out := r.AllGather(data)
			if len(out) != 2*p {
				t.Errorf("allgather length %d", len(out))
				return
			}
			for id := 0; id < p; id++ {
				if out[2*id] != float64(id) || out[2*id+1] != float64(id*10) {
					t.Errorf("p=%d rank=%d out=%v", p, r.ID(), out)
					return
				}
			}
		})
	}
}

func TestRingBandwidthOptimality(t *testing.T) {
	// Ring allreduce should move ~2(P-1)/P * n floats per rank; tree moves
	// more total traffic through the root. Check ring's per-rank bytes.
	const p, n = 8, 800
	w := NewWorld(p)
	w.Run(func(r *Rank) {
		data := make([]float64, n)
		r.AllReduce(data, ARRing)
	})
	perRank := w.Stats(3).BytesSent
	want := 8 * n * 2 * (p - 1) / p
	if perRank != want {
		t.Fatalf("ring per-rank bytes %d want %d", perRank, want)
	}
}

func TestRecDoublingMessageCount(t *testing.T) {
	const p, n = 8, 64
	w := NewWorld(p)
	w.Run(func(r *Rank) {
		data := make([]float64, n)
		r.AllReduce(data, ARRecursiveDoubling)
	})
	// log2(8)=3 rounds, one send per round per rank, n floats each.
	if got := w.Stats(0).MsgsSent; got != 3 {
		t.Fatalf("recursive doubling sent %d msgs, want 3", got)
	}
	if got := w.Stats(0).BytesSent; got != 3*8*n {
		t.Fatalf("recursive doubling sent %d bytes, want %d", got, 3*8*n)
	}
}

func TestFallbacks(t *testing.T) {
	// Non-power-of-two world must still produce correct results for the
	// power-of-two-only algorithms (they fall back to tree).
	checkAllReduce(t, 6, 20, ARRecursiveDoubling)
	checkAllReduce(t, 6, 20, ARRabenseifner)
	// Tiny vectors fall back from ring.
	checkAllReduce(t, 8, 3, ARRing)
}

func TestWorldValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero-size world did not panic")
		}
	}()
	NewWorld(0)
}

func TestSendToSelfPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("send-to-self did not panic")
		}
	}()
	w := NewWorld(2)
	w.Run(func(r *Rank) {
		if r.ID() == 0 {
			r.Send(0, 0, nil)
		}
	})
}

func TestRankPanicPropagates(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("rank panic not propagated")
		}
	}()
	w := NewWorld(2)
	w.Run(func(r *Rank) {
		if r.ID() == 1 {
			panic("boom")
		}
	})
}

func BenchmarkAllReduceRing8x4096(b *testing.B) {
	benchAllReduce(b, 8, 4096, ARRing)
}

func BenchmarkAllReduceRecDoubling8x4096(b *testing.B) {
	benchAllReduce(b, 8, 4096, ARRecursiveDoubling)
}

func BenchmarkAllReduceTree8x4096(b *testing.B) {
	benchAllReduce(b, 8, 4096, ARTree)
}

func BenchmarkAllReduceRabenseifner8x4096(b *testing.B) {
	benchAllReduce(b, 8, 4096, ARRabenseifner)
}

func benchAllReduce(b *testing.B, p, n int, algo AllReduceAlgorithm) {
	b.SetBytes(int64(8 * n))
	for i := 0; i < b.N; i++ {
		w := NewWorld(p)
		w.Run(func(r *Rank) {
			data := make([]float64, n)
			r.AllReduce(data, algo)
		})
	}
}
