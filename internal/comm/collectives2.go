package comm

// Additional collectives: scatter, gather, and reduce-scatter. These round
// out the MPI-style surface; the trainers mainly use AllReduce/AllGather,
// but model-parallel weight distribution (scatter) and checkpoint assembly
// (gather) use these.

const (
	tagScatter = 7 << 20
	tagGather  = 8 << 20
	tagRSc     = 9 << 20
)

// Scatter distributes root's data (length P*n) so rank i receives chunk i
// (length n). Non-root callers pass nil and receive their chunk.
func (r *Rank) Scatter(root int, data []float64) []float64 {
	p := r.Size()
	if p == 1 {
		out := make([]float64, len(data))
		copy(out, data)
		return out
	}
	if r.id == root {
		if len(data)%p != 0 {
			panic("comm: Scatter data not divisible by world size")
		}
		n := len(data) / p
		for dst := 0; dst < p; dst++ {
			if dst == root {
				continue
			}
			r.Send(dst, tagScatter+dst, data[dst*n:(dst+1)*n])
		}
		out := make([]float64, n)
		copy(out, data[root*n:(root+1)*n])
		return out
	}
	return r.Recv(root, tagScatter+r.id)
}

// Gather collects each rank's equal-length data onto root in rank order
// (root receives a P*n slice; others return nil).
func (r *Rank) Gather(root int, data []float64) []float64 {
	p := r.Size()
	if p == 1 {
		out := make([]float64, len(data))
		copy(out, data)
		return out
	}
	if r.id != root {
		r.Send(root, tagGather+r.id, data)
		return nil
	}
	n := len(data)
	out := make([]float64, p*n)
	copy(out[root*n:(root+1)*n], data)
	for src := 0; src < p; src++ {
		if src == root {
			continue
		}
		in := r.Recv(src, tagGather+src)
		if len(in) != n {
			panic("comm: Gather length mismatch")
		}
		copy(out[src*n:(src+1)*n], in)
	}
	return out
}

// ReduceScatter sums data (length divisible by P) elementwise across ranks
// and returns chunk i of the sum to rank i — the first half of a ring
// allreduce, exposed directly for gradient sharding (ZeRO-style uses).
func (r *Rank) ReduceScatter(data []float64) []float64 {
	p := r.Size()
	if len(data)%p != 0 {
		panic("comm: ReduceScatter data not divisible by world size")
	}
	n := len(data)
	if p == 1 {
		out := make([]float64, n)
		copy(out, data)
		return out
	}
	work := make([]float64, n)
	copy(work, data)
	right := (r.id + 1) % p
	left := (r.id - 1 + p) % p
	chunk := n / p
	for step := 0; step < p-1; step++ {
		sendChunk := (r.id - step + p) % p
		recvChunk := (r.id - step - 1 + p) % p
		r.Send(right, tagRSc+step, work[sendChunk*chunk:(sendChunk+1)*chunk])
		in := r.Recv(left, tagRSc+step)
		off := recvChunk * chunk
		for i := range in {
			work[off+i] += in[i]
		}
	}
	own := (r.id + 1) % p
	out := make([]float64, chunk)
	copy(out, work[own*chunk:(own+1)*chunk])
	return out
}

const tagA2A = 10 << 20

// AllToAll performs a personalized exchange: data holds P equal chunks,
// chunk j destined for rank j; the result holds chunk i received from each
// rank i, in rank order. Tensor-sharded model parallelism (transposes of
// distributed activations) is the classic user.
func (r *Rank) AllToAll(data []float64) []float64 {
	p := r.Size()
	if len(data)%p != 0 {
		panic("comm: AllToAll data not divisible by world size")
	}
	n := len(data) / p
	out := make([]float64, len(data))
	copy(out[r.id*n:(r.id+1)*n], data[r.id*n:(r.id+1)*n])
	if p == 1 {
		return out
	}
	// Post all sends, then collect: buffered links make this safe.
	for dst := 0; dst < p; dst++ {
		if dst == r.id {
			continue
		}
		r.Send(dst, tagA2A+r.id, data[dst*n:(dst+1)*n])
	}
	for src := 0; src < p; src++ {
		if src == r.id {
			continue
		}
		in := r.Recv(src, tagA2A+src)
		copy(out[src*n:(src+1)*n], in)
	}
	return out
}
