package comm

import (
	"math"
	"strings"
	"testing"
	"time"

	"repro/internal/rng"
)

// fillRand fills buf with deterministic values spanning several magnitudes
// so float addition order actually matters.
func fillRand(r *rng.Stream, buf []float64) {
	for i := range buf {
		buf[i] = (r.Float64() - 0.5) * math.Pow(10, float64(i%7)-3)
	}
}

// TestBucketAllReduceSums checks the bucketed path produces correct sums for
// every algorithm and several world sizes / bucket lengths.
func TestBucketAllReduceSums(t *testing.T) {
	algos := []AllReduceAlgorithm{ARTree, ARRing, ARRecursiveDoubling, ARRabenseifner}
	for _, p := range []int{1, 2, 3, 4, 8} {
		for _, algo := range algos {
			lens := []int{1, 5, 64, 257}
			w := NewWorld(p)
			w.Run(func(r *Rank) {
				br := r.NewBucketReducer(algo)
				var handles []*BucketHandle
				var bufs [][]float64
				for b, n := range lens {
					buf := make([]float64, n)
					for i := range buf {
						buf[i] = float64(r.ID()*1000 + b*100 + i)
					}
					bufs = append(bufs, buf)
					handles = append(handles, br.SubmitAllReduce(buf))
				}
				for _, h := range handles {
					if err := h.Wait(); err != nil {
						t.Errorf("p=%d algo=%v: %v", p, algo, err)
					}
				}
				if err := br.Close(); err != nil {
					t.Errorf("p=%d algo=%v close: %v", p, algo, err)
				}
				for b, buf := range bufs {
					for i := range buf {
						want := 0.0
						for rank := 0; rank < p; rank++ {
							want += float64(rank*1000 + b*100 + i)
						}
						if buf[i] != want {
							t.Fatalf("p=%d algo=%v bucket %d elem %d: got %v want %v",
								p, algo, b, i, buf[i], want)
						}
					}
				}
			})
		}
	}
}

// TestBucketedBitwiseEqualsFlat is the segmentation-invariance differential:
// for tree, recursive-doubling, and Rabenseifner, reducing a buffer in
// buckets must be bitwise identical to one flat AllReduce of the whole
// buffer — this is the property the overlapped trainer's bitwise-identity
// guarantee rests on.
func TestBucketedBitwiseEqualsFlat(t *testing.T) {
	const n = 1003
	algos := []AllReduceAlgorithm{ARTree, ARRecursiveDoubling, ARRabenseifner}
	for _, p := range []int{2, 3, 4, 8} {
		for _, algo := range algos {
			for _, bucketLen := range []int{1, 7, 128, 500, n, 2 * n} {
				// Flat reference.
				flat := make([][]float64, p)
				wf := NewWorld(p)
				wf.Run(func(r *Rank) {
					buf := make([]float64, n)
					fillRand(rng.New(42).SplitN(r.ID()), buf)
					r.AllReduce(buf, algo)
					flat[r.ID()] = buf
				})
				// Bucketed.
				wb := NewWorld(p)
				wb.Run(func(r *Rank) {
					buf := make([]float64, n)
					fillRand(rng.New(42).SplitN(r.ID()), buf)
					br := r.NewBucketReducer(algo)
					var handles []*BucketHandle
					for lo := 0; lo < n; lo += bucketLen {
						hi := min(lo+bucketLen, n)
						handles = append(handles, br.SubmitAllReduce(buf[lo:hi]))
					}
					for _, h := range handles {
						if err := h.Wait(); err != nil {
							t.Errorf("wait: %v", err)
						}
					}
					if err := br.Close(); err != nil {
						t.Errorf("close: %v", err)
					}
					for i := range buf {
						if math.Float64bits(buf[i]) != math.Float64bits(flat[r.ID()][i]) {
							t.Fatalf("p=%d algo=%v bucketLen=%d rank %d elem %d: bucketed %x flat %x",
								p, algo, bucketLen, r.ID(), i,
								math.Float64bits(buf[i]), math.Float64bits(flat[r.ID()][i]))
						}
					}
				})
			}
		}
	}
}

// TestBucketedRingCloseToFlat: ring is not segmentation-invariant, so the
// bucketed result may differ from flat by rounding — but only by rounding.
func TestBucketedRingCloseToFlat(t *testing.T) {
	const n = 1003
	p := 4
	flat := make([][]float64, p)
	wf := NewWorld(p)
	wf.Run(func(r *Rank) {
		buf := make([]float64, n)
		fillRand(rng.New(7).SplitN(r.ID()), buf)
		r.AllReduce(buf, ARRing)
		flat[r.ID()] = buf
	})
	wb := NewWorld(p)
	wb.Run(func(r *Rank) {
		buf := make([]float64, n)
		fillRand(rng.New(7).SplitN(r.ID()), buf)
		br := r.NewBucketReducer(ARRing)
		var handles []*BucketHandle
		for lo := 0; lo < n; lo += 100 {
			handles = append(handles, br.SubmitAllReduce(buf[lo:min(lo+100, n)]))
		}
		for _, h := range handles {
			if err := h.Wait(); err != nil {
				t.Errorf("wait: %v", err)
			}
		}
		if err := br.Close(); err != nil {
			t.Errorf("close: %v", err)
		}
		for i := range buf {
			ref := flat[r.ID()][i]
			tol := 1e-12 * (math.Abs(ref) + 1)
			if math.Abs(buf[i]-ref) > tol {
				t.Fatalf("rank %d elem %d: bucketed %v flat %v", r.ID(), i, buf[i], ref)
			}
		}
	})
}

// TestBucketAllGather checks bucketed allgather concatenates in rank order
// and interleaves correctly with allreduce buckets in the same queue.
func TestBucketAllGather(t *testing.T) {
	for _, p := range []int{1, 2, 4, 5} {
		w := NewWorld(p)
		w.Run(func(r *Rank) {
			br := r.NewBucketReducer(ARTree)
			seg := []float64{float64(r.ID()), float64(r.ID()) + 0.5}
			red := []float64{1, 2, 3}
			hg := br.SubmitAllGather(seg)
			hr := br.SubmitAllReduce(red)
			if err := hg.Wait(); err != nil {
				t.Errorf("gather wait: %v", err)
			}
			if err := hr.Wait(); err != nil {
				t.Errorf("reduce wait: %v", err)
			}
			if err := br.Close(); err != nil {
				t.Errorf("close: %v", err)
			}
			got := hg.Gathered()
			if len(got) != 2*p {
				t.Fatalf("gathered len %d want %d", len(got), 2*p)
			}
			for rank := 0; rank < p; rank++ {
				if got[2*rank] != float64(rank) || got[2*rank+1] != float64(rank)+0.5 {
					t.Fatalf("rank %d sees gathered %v", r.ID(), got)
				}
			}
			for i, v := range red {
				if v != float64(i+1)*float64(p) {
					t.Fatalf("interleaved allreduce wrong: %v", red)
				}
			}
		})
	}
}

// TestBucketReducerManyBucketsTagRecycle pushes well past bucketTagSlots to
// exercise tag-window recycling.
func TestBucketReducerManyBucketsTagRecycle(t *testing.T) {
	p := 3
	nBuckets := bucketTagSlots*2 + 5
	w := NewWorld(p)
	w.Run(func(r *Rank) {
		br := r.NewBucketReducer(ARTree)
		bufs := make([][]float64, nBuckets)
		handles := make([]*BucketHandle, nBuckets)
		for b := range bufs {
			bufs[b] = []float64{float64(b), float64(r.ID())}
			handles[b] = br.SubmitAllReduce(bufs[b])
		}
		for b, h := range handles {
			if err := h.Wait(); err != nil {
				t.Errorf("bucket %d: %v", b, err)
			}
		}
		if err := br.Close(); err != nil {
			t.Errorf("close: %v", err)
		}
		for b, buf := range bufs {
			if buf[0] != float64(b*p) || buf[1] != float64(p*(p-1)/2) {
				t.Fatalf("bucket %d wrong: %v", b, buf)
			}
		}
	})
}

// TestBucketReducerErrorPoisoning: a failing collective must surface as an
// error on the bucket's handle and poison later buckets instead of hanging
// or corrupting links.
func TestBucketReducerErrorPoisoning(t *testing.T) {
	// Run a 2-rank world where rank 1 deliberately submits a mismatched
	// bucket count; its reducer's extra bucket would block forever, so
	// instead we simulate the failure mode the trainer actually hits: a
	// dead peer detected by the recv watchdog.
	defer func() {
		p := recover()
		if p == nil {
			t.Fatal("expected world to re-raise the watchdog panic")
		}
		if !strings.Contains(eString(p), "rank") {
			t.Fatalf("unexpected panic: %v", p)
		}
	}()
	w := NewWorld(2)
	w.SetRecvTimeout(50 * time.Millisecond)
	w.Run(func(r *Rank) {
		if r.ID() == 1 {
			return // rank 1 dies before communicating
		}
		br := r.NewBucketReducer(ARTree)
		h1 := br.SubmitAllReduce([]float64{1, 2})
		h2 := br.SubmitAllReduce([]float64{3})
		err1, err2 := h1.Wait(), h2.Wait()
		if err1 == nil || err2 == nil {
			t.Errorf("expected both buckets to fail: %v / %v", err1, err2)
		}
		if err2 != nil && !strings.Contains(err2.Error(), "failed") {
			t.Errorf("sticky error missing: %v", err2)
		}
		closeErr := br.Close()
		if closeErr == nil {
			t.Error("Close should return the sticky error")
		}
		// Re-raise so the deferred check sees the expected panic path:
		// in production the trainer propagates the reducer error.
		panic(closeErr)
	})
}

func eString(p any) string {
	if s, ok := p.(string); ok {
		return s
	}
	if e, ok := p.(error); ok {
		return e.Error()
	}
	return ""
}

// TestBucketSubmitAfterClose: late submissions fail fast instead of hanging.
func TestBucketSubmitAfterClose(t *testing.T) {
	w := NewWorld(1)
	w.Run(func(r *Rank) {
		br := r.NewBucketReducer(ARTree)
		if err := br.Close(); err != nil {
			t.Fatalf("close: %v", err)
		}
		h := br.SubmitAllReduce([]float64{1})
		if err := h.Wait(); err == nil {
			t.Fatal("submit after close should error")
		}
	})
}
