package comm

import (
	"encoding/binary"
	"errors"
	"hash/crc32"
	"math"
)

// Wire framing for the fault-aware transport. When link faults are enabled
// (World.SetLinkFaults), every point-to-point message travels as a CRC-framed
// byte slice instead of a bare []float64, so the receiver can detect silent
// in-transit corruption and deduplicate retransmissions:
//
//	offset  size  field
//	0       4     tag  (uint32, little endian)
//	4       4     seq  (uint32, per-link sequence number)
//	8       4     n    (uint32, payload length in float64s)
//	12      4     crc  (CRC-32/IEEE over tag|seq|n|payload)
//	16      8*n   payload (float64 bits, little endian)
//
// CRC-32 detects every single-bit and every burst error up to 32 bits, which
// covers the SilentCorruption injector (one flipped bit per corrupted frame)
// with certainty: a corrupted frame is never delivered as valid data.

// frameHeaderLen is the fixed frame header size in bytes.
const frameHeaderLen = 16

// Frame decoding errors. DecodeFrame wraps these so callers can classify
// rejects with errors.Is.
var (
	// ErrFrameTruncated reports a frame shorter than its header or its
	// declared payload.
	ErrFrameTruncated = errors.New("comm: frame truncated")
	// ErrFrameCRC reports a checksum mismatch: the frame was corrupted in
	// transit and must be retransmitted, never delivered.
	ErrFrameCRC = errors.New("comm: frame CRC mismatch")
	// ErrFrameLength reports a declared payload length that disagrees with
	// the frame size.
	ErrFrameLength = errors.New("comm: frame length mismatch")
)

// EncodeFrame packs one message into the CRC-framed wire format. tag and
// seq are truncated to 32 bits (collective tags fit comfortably).
func EncodeFrame(tag, seq int, data []float64) []byte {
	b := make([]byte, frameHeaderLen+8*len(data))
	binary.LittleEndian.PutUint32(b[0:], uint32(tag))
	binary.LittleEndian.PutUint32(b[4:], uint32(seq))
	binary.LittleEndian.PutUint32(b[8:], uint32(len(data)))
	for i, v := range data {
		binary.LittleEndian.PutUint64(b[frameHeaderLen+8*i:], math.Float64bits(v))
	}
	binary.LittleEndian.PutUint32(b[12:], frameCRC(b))
	return b
}

// DecodeFrame validates and unpacks one wire frame. It never panics on
// arbitrary input: truncated, mis-sized, or corrupted frames return an
// error (and a nil payload) instead. A nil payload with err == nil means a
// frame with zero floats (barrier traffic).
func DecodeFrame(b []byte) (tag, seq int, data []float64, err error) {
	if len(b) < frameHeaderLen {
		return 0, 0, nil, ErrFrameTruncated
	}
	n := binary.LittleEndian.Uint32(b[8:])
	// Guard the multiplication: a corrupted length field must not size an
	// allocation. Reject anything that disagrees with the actual frame.
	if uint64(len(b)-frameHeaderLen) != 8*uint64(n) {
		if len(b)-frameHeaderLen < int(8*uint64(n)) {
			return 0, 0, nil, ErrFrameTruncated
		}
		return 0, 0, nil, ErrFrameLength
	}
	if frameCRC(b) != binary.LittleEndian.Uint32(b[12:]) {
		return 0, 0, nil, ErrFrameCRC
	}
	tag = int(binary.LittleEndian.Uint32(b[0:]))
	seq = int(binary.LittleEndian.Uint32(b[4:]))
	if n > 0 {
		data = make([]float64, n)
		for i := range data {
			data[i] = math.Float64frombits(
				binary.LittleEndian.Uint64(b[frameHeaderLen+8*i:]))
		}
	}
	return tag, seq, data, nil
}

// frameCRC computes the frame checksum: CRC-32/IEEE over the whole frame
// with the crc field itself zeroed.
func frameCRC(b []byte) uint32 {
	h := crc32.NewIEEE()
	h.Write(b[:12])
	var zero [4]byte
	h.Write(zero[:])
	h.Write(b[frameHeaderLen:])
	return h.Sum32()
}
