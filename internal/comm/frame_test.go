package comm

import (
	"bytes"
	"errors"
	"math"
	"testing"
)

func TestFrameRoundTrip(t *testing.T) {
	payloads := [][]float64{
		nil,
		{},
		{0},
		{1.5, -2.25, math.Inf(1), math.Inf(-1), math.MaxFloat64, math.SmallestNonzeroFloat64},
		make([]float64, 257),
	}
	for _, data := range payloads {
		b := EncodeFrame(3<<20+7, 41, data)
		tag, seq, got, err := DecodeFrame(b)
		if err != nil {
			t.Fatalf("clean frame rejected: %v", err)
		}
		if tag != 3<<20+7 || seq != 41 {
			t.Fatalf("header mangled: tag=%d seq=%d", tag, seq)
		}
		if len(got) != len(data) {
			t.Fatalf("payload length %d, want %d", len(got), len(data))
		}
		for i := range data {
			if math.Float64bits(got[i]) != math.Float64bits(data[i]) {
				t.Fatalf("payload[%d] = %v, want %v", i, got[i], data[i])
			}
		}
	}
}

// NaN payloads must round-trip bit-exactly (== comparison would lie).
func TestFrameRoundTripNaN(t *testing.T) {
	data := []float64{math.NaN(), 1}
	_, _, got, err := DecodeFrame(EncodeFrame(1, 0, data))
	if err != nil {
		t.Fatal(err)
	}
	if math.Float64bits(got[0]) != math.Float64bits(data[0]) {
		t.Fatal("NaN payload bits changed in flight")
	}
}

// TestFrameDetectsEverySingleBitFlip: CRC-32 guarantees detection of any
// single-bit error, which is exactly what the SilentCorruption injector
// produces. Flip every bit of a frame and require a decode error each time.
func TestFrameDetectsEverySingleBitFlip(t *testing.T) {
	b := EncodeFrame(7, 3, []float64{1.25, -9.5, 1e-300})
	for bit := 0; bit < 8*len(b); bit++ {
		bad := append([]byte(nil), b...)
		bad[bit/8] ^= 1 << (bit % 8)
		if _, _, _, err := DecodeFrame(bad); err == nil {
			t.Fatalf("flipping bit %d went undetected", bit)
		}
	}
}

func TestFrameRejectsTruncatedAndMismatched(t *testing.T) {
	b := EncodeFrame(1, 2, []float64{3, 4})
	if _, _, _, err := DecodeFrame(nil); !errors.Is(err, ErrFrameTruncated) {
		t.Fatalf("nil frame: %v, want ErrFrameTruncated", err)
	}
	if _, _, _, err := DecodeFrame(b[:frameHeaderLen-1]); !errors.Is(err, ErrFrameTruncated) {
		t.Fatalf("short header: %v", err)
	}
	if _, _, _, err := DecodeFrame(b[:len(b)-3]); !errors.Is(err, ErrFrameTruncated) {
		t.Fatalf("truncated payload: %v", err)
	}
	if _, _, _, err := DecodeFrame(append(b, 0)); err == nil {
		t.Fatal("oversized frame accepted")
	}
}

// FuzzCommFrame is the satellite fuzz target: arbitrary bytes through
// DecodeFrame must never panic and never deliver silently-wrong data; valid
// frames must round-trip canonically; and any single-bit corruption of a
// valid frame must be rejected, because that is the recovery contract the
// retransmitting transport depends on.
func FuzzCommFrame(f *testing.F) {
	f.Add([]byte{})                            // zero-length frame
	f.Add(EncodeFrame(0, 0, nil))              // minimal valid frame
	f.Add(EncodeFrame(1<<20, 5, []float64{1})) // small valid frame
	flipped := EncodeFrame(2<<20, 9, []float64{2.5, -3})
	flipped[12] ^= 0xff // flipped-CRC seed
	f.Add(flipped)
	f.Add(bytes.Repeat([]byte{0xaa}, 40))

	f.Fuzz(func(t *testing.T, b []byte) {
		// 1. Decoding arbitrary bytes must not panic; a successful decode
		//    must re-encode to the identical bytes (canonical framing).
		tag, seq, data, err := DecodeFrame(b)
		if err == nil {
			if re := EncodeFrame(tag, seq, data); !bytes.Equal(re, b) {
				t.Fatalf("decode/encode not canonical:\n in  %x\n out %x", b, re)
			}
		}

		// 2. Treat the input as a payload: encode must decode exactly.
		payload := make([]float64, len(b)/8)
		for i := range payload {
			var bits uint64
			for j := 0; j < 8; j++ {
				bits |= uint64(b[8*i+j]) << (8 * j)
			}
			payload[i] = math.Float64frombits(bits)
		}
		enc := EncodeFrame(int(uint32(len(b))), len(payload), payload)
		tag2, seq2, got, err := DecodeFrame(enc)
		if err != nil {
			t.Fatalf("fresh frame rejected: %v", err)
		}
		if tag2 != int(uint32(len(b))) || seq2 != len(payload) || len(got) != len(payload) {
			t.Fatalf("fresh frame mangled: tag=%d seq=%d n=%d", tag2, seq2, len(got))
		}
		for i := range payload {
			if math.Float64bits(got[i]) != math.Float64bits(payload[i]) {
				t.Fatalf("payload[%d] bits changed", i)
			}
		}

		// 3. One flipped bit (position derived from the input) must be
		//    detected — never decoded as valid data.
		if len(enc) > 0 {
			bit := int(uint32(len(b))*2654435761) % (8 * len(enc))
			bad := append([]byte(nil), enc...)
			bad[bit/8] ^= 1 << (bit % 8)
			if _, _, _, err := DecodeFrame(bad); err == nil {
				t.Fatalf("single-bit flip at %d delivered silently", bit)
			}
		}
	})
}
