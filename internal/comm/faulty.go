package comm

import (
	"fmt"
	"runtime"
	"time"

	"repro/internal/fault"
	"repro/internal/rng"
)

// Fault-aware transport: when a World has link faults enabled, every
// point-to-point message travels CRC-framed (frame.go) through a seeded
// per-link injector that can delay, drop, duplicate, or bit-flip frames in
// transit. The receiver rejects corrupted frames by CRC mismatch and
// deduplicates by per-link sequence number; the sender retransmits dropped
// and corrupted frames (the in-process stand-in for an ack-timeout loop).
// Collectives above Send/Recv are untouched: allreduce over a lossy fabric
// delivers bit-identical sums, it just pays measured retransmit overhead
// (Stats.Retransmits / RetransmitBytes).
//
// Determinism: each directed link (src, dst) owns one split rng stream, and
// only rank src's goroutine draws from it, so a seed fully determines which
// frames are dropped, duplicated, delayed, and which bit each corruption
// flips — regardless of goroutine interleaving.

// linkFaults is a World's fault-injection state.
type linkFaults struct {
	cfg   fault.LinkFault
	links [][]*linkState // links[src][dst]
}

// linkState is one directed link's injector + protocol state. The sender
// goroutine owns r and nextSeq; the receiver goroutine owns expect. The
// fields are never shared across goroutines.
type linkState struct {
	r       *rng.Stream // sender-side fault draws
	nextSeq int         // sender: next fresh sequence number
	expect  int         // receiver: next sequence number not yet delivered
}

// SetLinkFaults enables the fault-aware framed transport on every link,
// with faults drawn deterministically from the seed. Must be called before
// Run (the transport mode may not change while messages are in flight).
func (w *World) SetLinkFaults(lf fault.LinkFault, seed uint64) error {
	if err := lf.Validate(); err != nil {
		return err
	}
	f := &linkFaults{cfg: lf, links: make([][]*linkState, w.size)}
	root := rng.New(seed).Split("comm-link-faults")
	for i := range f.links {
		f.links[i] = make([]*linkState, w.size)
		for j := range f.links[i] {
			f.links[i][j] = &linkState{r: root.SplitN(i*w.size + j)}
		}
	}
	w.faults = f
	return nil
}

// SetRecvTimeout arms a per-receive watchdog: any Recv (and therefore any
// collective) that waits longer than d for a peer panics with a diagnostic
// naming the waiting rank and the silent peer, instead of hanging the run
// forever. 0 disables (the default). This is the gray-failure backstop: a
// dead or wedged peer turns into a loud, attributable failure at the
// synchronization barrier rather than an invisible stall.
func (w *World) SetRecvTimeout(d time.Duration) { w.recvTimeout = d }

// maxSendAttempts bounds the retransmit loop; at the validated fault rates
// the probability of exhausting it is negligible, so hitting it means the
// link is effectively dead.
const maxSendAttempts = 64

// sendFramed is Send on a faulty link: encode, inject, retransmit until the
// injector lets a clean (or at least deliverable) frame through.
func (r *Rank) sendFramed(f *linkFaults, dst, tag int, data []float64) {
	ls := f.links[r.id][dst]
	seq := ls.nextSeq
	ls.nextSeq++
	wire := EncodeFrame(tag, seq, data)
	st := &r.world.stats[r.id]
	cfg := f.cfg
	for attempt := 0; attempt < maxSendAttempts; attempt++ {
		if attempt > 0 {
			st.Retransmits++
			st.RetransmitBytes += 8 * len(data)
		}
		st.MsgsSent++
		st.BytesSent += 8 * len(data)
		if cfg.DelayProb > 0 && ls.r.Bernoulli(cfg.DelayProb) {
			// Links are FIFO in-process, so latency jitter cannot reorder
			// frames; its observable effect is a perturbed interleaving.
			st.DelaysInjected++
			runtime.Gosched()
		}
		if cfg.DropProb > 0 && ls.r.Bernoulli(cfg.DropProb) {
			// The fabric ate the frame: the sender's (modelled) ack timeout
			// fires and the loop retransmits.
			st.FramesDropped++
			continue
		}
		if cfg.CorruptProb > 0 && ls.r.Bernoulli(cfg.CorruptProb) {
			// Silent corruption: flip one seeded bit of a copy and deliver
			// it anyway. The receiver's CRC check rejects it, and the clean
			// retransmit follows right behind.
			bad := append([]byte(nil), wire...)
			bit := ls.r.Intn(8 * len(bad))
			bad[bit/8] ^= 1 << (bit % 8)
			st.FramesCorrupted++
			r.deliver(dst, message{wire: bad})
			continue
		}
		r.deliver(dst, message{wire: wire})
		if cfg.DupProb > 0 && ls.r.Bernoulli(cfg.DupProb) {
			st.FramesDuplicated++
			st.MsgsSent++
			st.BytesSent += 8 * len(data)
			r.deliver(dst, message{wire: wire})
		}
		return
	}
	panic(fmt.Sprintf("comm: rank %d -> %d: link gave up after %d attempts (tag %d)",
		r.id, dst, maxSendAttempts, tag))
}

// recvFramed is Recv on a faulty link: drain frames until one decodes clean
// and is not a duplicate. Corrupted frames are counted and discarded — the
// retransmit is already behind them — so a flipped bit can delay a message
// but never deliver wrong floats.
func (r *Rank) recvFramed(f *linkFaults, src, tag int) []float64 {
	ls := f.links[src][r.id]
	st := &r.world.stats[r.id]
	for {
		m := r.recvMsg(src)
		gotTag, seq, data, err := DecodeFrame(m.wire)
		if err != nil {
			st.CorruptDetected++
			continue
		}
		if seq < ls.expect {
			st.DupsDropped++
			continue
		}
		ls.expect = seq + 1
		if gotTag != tag {
			panic(fmt.Sprintf("comm: rank %d expected tag %d from %d, got %d",
				r.id, tag, src, gotTag))
		}
		return data
	}
}

// deliver puts one message on the directed link's channel.
func (r *Rank) deliver(dst int, m message) {
	r.world.chans[r.id][dst] <- m
}

// recvMsg blocks for the next message from src, honouring the receive
// watchdog when one is armed.
func (r *Rank) recvMsg(src int) message {
	ch := r.world.chans[src][r.id]
	to := r.world.recvTimeout
	if to <= 0 {
		return <-ch
	}
	timer := time.NewTimer(to)
	defer timer.Stop()
	select {
	case m := <-ch:
		return m
	case <-timer.C:
		panic(fmt.Sprintf(
			"comm: rank %d timed out after %v waiting on rank %d (dead peer or wedged collective)",
			r.id, to, src))
	}
}
