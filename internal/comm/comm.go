// Package comm is a message-passing runtime modelled on MPI: a World of P
// ranks (goroutines) connected point-to-point by buffered channels, with the
// collective algorithms distributed deep-learning actually uses — binomial
// broadcast/reduce, ring and recursive-doubling and Rabenseifner allreduce,
// allgather, and barriers.
//
// The collectives move the same messages, in the same pattern, as their MPI
// counterparts, and each rank accounts bytes and message counts, so the
// machine model (internal/machine) can convert a run's traffic into
// simulated wall-clock on any fabric. Within a process the runtime also
// serves as the real transport for the data-parallel trainer in
// internal/parallel.
package comm

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/obs"
)

// message is one point-to-point transfer. Data is owned by the receiver
// after delivery (senders copy). On a fault-injected world the payload
// travels CRC-framed in wire instead (see frame.go / faulty.go).
type message struct {
	tag  int
	data []float64
	wire []byte // CRC frame; non-nil exactly when link faults are enabled
}

// World is a fixed-size group of communicating ranks.
type World struct {
	size        int
	chans       [][]chan message // chans[src][dst]
	stats       []Stats
	obs         *obs.Session
	obsTID      func(rankID int) int
	faults      *linkFaults   // nil = clean fabric, raw fast path
	recvTimeout time.Duration // 0 = no receive watchdog
}

// SetObs attaches a telemetry session: collectives then record per-rank
// spans (tid = rank id) and bytes/latency hooks. Call before Run; a nil or
// disabled session keeps collectives on their uninstrumented fast path.
func (w *World) SetObs(s *obs.Session) { w.obs = s }

// SetObsTID remaps rank ids to trace tids — needed when one goroutine
// participates in several worlds (hybrid training) so all its spans land on
// the single tid that goroutine owns. Default is the identity.
func (w *World) SetObsTID(f func(rankID int) int) { w.obsTID = f }

// Stats accumulates per-rank traffic counters. MsgsSent/BytesSent count
// every transmission put on the wire — including retransmits and injected
// duplicates — so on a faulty fabric they measure delivered-plus-overhead
// traffic; the fault counters below break the overhead out.
type Stats struct {
	MsgsSent  int
	BytesSent int // payload bytes (8 per float64)

	// Fault-aware transport counters; all zero unless SetLinkFaults is on.
	Retransmits      int // frames re-sent after a drop or detected corruption
	RetransmitBytes  int // payload bytes of those re-sends (the overhead)
	FramesDropped    int // frames the injector destroyed in transit
	FramesCorrupted  int // frames the injector bit-flipped in transit
	FramesDuplicated int // extra copies the injector delivered
	CorruptDetected  int // received frames rejected by CRC mismatch
	DupsDropped      int // received duplicates discarded by the seq check
	DelaysInjected   int // sender-side delay yields injected
}

// NewWorld creates a world of p ranks with all-to-all buffered links.
func NewWorld(p int) *World {
	if p <= 0 {
		panic("comm: world size must be positive")
	}
	w := &World{size: p, chans: make([][]chan message, p), stats: make([]Stats, p)}
	for i := range w.chans {
		w.chans[i] = make([]chan message, p)
		for j := range w.chans[i] {
			w.chans[i][j] = make(chan message, 16)
		}
	}
	return w
}

// Size returns the number of ranks.
func (w *World) Size() int { return w.size }

// Stats returns a copy of rank i's traffic counters. Call only after Run
// returns (counters are owned by the rank goroutine during execution).
func (w *World) Stats(i int) Stats { return w.stats[i] }

// TotalBytes returns the total payload bytes sent by all ranks.
func (w *World) TotalBytes() int {
	total := 0
	for i := range w.stats {
		total += w.stats[i].BytesSent
	}
	return total
}

// Run executes fn concurrently on every rank and blocks until all return.
// Panics inside a rank are re-raised on the caller after all ranks settle.
func (w *World) Run(fn func(r *Rank)) {
	var wg sync.WaitGroup
	panics := make([]any, w.size)
	for i := 0; i < w.size; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			defer func() {
				if p := recover(); p != nil {
					panics[id] = p
				}
			}()
			fn(&Rank{world: w, id: id})
		}(i)
	}
	wg.Wait()
	for id, p := range panics {
		if p != nil {
			panic(fmt.Sprintf("comm: rank %d panicked: %v", id, p))
		}
	}
}

// ExternalRank returns a rank handle for a caller-managed goroutine —
// used when one goroutine participates in several worlds (e.g. a hybrid
// trainer's pipeline world plus a per-stage reduce world). Exactly one
// goroutine may use each rank id, and Stats/TotalBytes are only safe to
// read after all such goroutines have finished.
func (w *World) ExternalRank(id int) *Rank {
	if id < 0 || id >= w.size {
		panic(fmt.Sprintf("comm: rank %d out of range [0,%d)", id, w.size))
	}
	return &Rank{world: w, id: id}
}

// Rank is one participant in a World. Rank methods must be called only from
// the goroutine Run started for that rank.
type Rank struct {
	world *World
	id    int
}

// ID returns this rank's index in [0, Size).
func (r *Rank) ID() int { return r.id }

// Size returns the world size.
func (r *Rank) Size() int { return r.world.size }

// Send delivers a copy of data to dst with the given tag. On a
// fault-injected world the copy travels CRC-framed through the link
// injector, retransmitting around drops and corruption.
func (r *Rank) Send(dst, tag int, data []float64) {
	if dst == r.id {
		panic("comm: send to self")
	}
	if f := r.world.faults; f != nil {
		r.sendFramed(f, dst, tag, data)
		return
	}
	cp := make([]float64, len(data))
	copy(cp, data)
	r.world.stats[r.id].MsgsSent++
	r.world.stats[r.id].BytesSent += 8 * len(data)
	r.world.chans[r.id][dst] <- message{tag: tag, data: cp}
}

// Recv blocks for the next message from src and checks its tag. On a
// fault-injected world it validates CRC framing, discarding corrupted
// frames and duplicates until a clean fresh frame arrives.
func (r *Rank) Recv(src, tag int) []float64 {
	if f := r.world.faults; f != nil {
		return r.recvFramed(f, src, tag)
	}
	m := r.recvMsg(src)
	if m.tag != tag {
		panic(fmt.Sprintf("comm: rank %d expected tag %d from %d, got %d",
			r.id, tag, src, m.tag))
	}
	return m.data
}

// SendRecv exchanges data with a partner (send to dst, receive from src),
// posting the send first so symmetric exchanges cannot deadlock on the
// buffered links.
func (r *Rank) SendRecv(dst int, sendData []float64, src, tag int) []float64 {
	r.Send(dst, tag, sendData)
	return r.Recv(src, tag)
}

// collective tags; each collective round uses a distinct tag space so
// mismatched calls fail loudly instead of corrupting data.
const (
	tagBarrier = 1 << 20
	tagBcast   = 2 << 20
	tagReduce  = 3 << 20
	tagAR      = 4 << 20
	tagAG      = 5 << 20
	tagRS      = 6 << 20
)

// Barrier blocks until every rank has entered (dissemination barrier,
// ⌈log2 P⌉ rounds).
func (r *Rank) Barrier() {
	p := r.Size()
	if p == 1 {
		return
	}
	for round, dist := 0, 1; dist < p; round, dist = round+1, dist*2 {
		dst := (r.id + dist) % p
		src := (r.id - dist + p) % p
		r.Send(dst, tagBarrier+round, nil)
		r.Recv(src, tagBarrier+round)
	}
}

// Broadcast distributes root's data to every rank via a binomial tree and
// returns each rank's copy. Non-root callers may pass nil.
func (r *Rank) Broadcast(root int, data []float64) []float64 {
	if r.Size() == 1 {
		return data
	}
	if r.world.obs.Enabled() {
		defer r.endColl(r.beginColl("broadcast"))
	}
	return r.broadcastFrom(root, data, tagBcast)
}

// broadcastFrom is the binomial broadcast over an explicit tag base, shared
// by Broadcast and the bucketed tree allreduce (which salts the base with
// the bucket sequence number).
func (r *Rank) broadcastFrom(root int, data []float64, base int) []float64 {
	p := r.Size()
	if p == 1 {
		return data
	}
	// Rotate so the root is virtual rank 0.
	vr := (r.id - root + p) % p
	if vr != 0 {
		// Receive from parent.
		mask := 1
		for mask < p {
			if vr&mask != 0 {
				parent := ((vr - mask) + root) % p
				data = r.Recv(parent, base+mask)
				break
			}
			mask <<= 1
		}
		// Forward to children below the received mask.
		recvMask := 1
		for vr&recvMask == 0 {
			recvMask <<= 1
		}
		for mask := recvMask >> 1; mask >= 1; mask >>= 1 {
			child := vr | mask
			if child < p {
				r.Send((child+root)%p, base+mask, data)
			}
		}
		return data
	}
	// Root: send to children at decreasing masks.
	top := 1
	for top < p {
		top <<= 1
	}
	for mask := top >> 1; mask >= 1; mask >>= 1 {
		child := mask
		if child < p {
			r.Send((child+root)%p, base+mask, data)
		}
	}
	return data
}

// Reduce sums each rank's data elementwise onto root via a binomial tree.
// Every rank must pass equal-length data; the root's return value holds the
// sum, other ranks return nil.
func (r *Rank) Reduce(root int, data []float64) []float64 {
	if r.Size() > 1 && r.world.obs.Enabled() {
		defer r.endColl(r.beginColl("reduce"))
	}
	return r.reduceTo(root, data, tagReduce)
}

// reduceTo is the binomial reduce over an explicit tag base. The per-element
// combination tree is the same binomial bracketing for every element
// regardless of where it sits in the buffer, which is what makes tree (and
// recursive-doubling, and Rabenseifner) allreduces segmentation-invariant:
// reducing a buffer in buckets yields bitwise-identical sums to reducing it
// flat. (The ring algorithm is the exception — see allReduceRing.)
func (r *Rank) reduceTo(root int, data []float64, base int) []float64 {
	p := r.Size()
	acc := make([]float64, len(data))
	copy(acc, data)
	if p == 1 {
		return acc
	}
	vr := (r.id - root + p) % p
	for mask := 1; mask < p; mask <<= 1 {
		if vr&mask != 0 {
			parent := ((vr &^ mask) + root) % p
			r.Send(parent, base+mask, acc)
			return nil
		}
		peer := vr | mask
		if peer < p {
			in := r.Recv((peer+root)%p, base+mask)
			for i := range acc {
				acc[i] += in[i]
			}
		}
	}
	return acc
}

// AllReduceAlgorithm selects the allreduce implementation.
type AllReduceAlgorithm int

// Available allreduce algorithms.
const (
	// ARRing: reduce-scatter + allgather around a ring. Bandwidth-optimal
	// (2(P-1)/P · n bytes per rank), latency O(P).
	ARRing AllReduceAlgorithm = iota
	// ARRecursiveDoubling: log2 P rounds of pairwise full exchanges.
	// Latency-optimal, bandwidth O(n log P). Requires power-of-two P.
	ARRecursiveDoubling
	// ARTree: binomial reduce to rank 0 then binomial broadcast.
	ARTree
	// ARRabenseifner: recursive-halving reduce-scatter + recursive-doubling
	// allgather. Bandwidth-optimal with log P latency. Power-of-two P.
	ARRabenseifner
)

// String names the algorithm.
func (a AllReduceAlgorithm) String() string {
	switch a {
	case ARRing:
		return "ring"
	case ARRecursiveDoubling:
		return "recursive-doubling"
	case ARTree:
		return "tree"
	case ARRabenseifner:
		return "rabenseifner"
	default:
		return "allreduce?"
	}
}

// collMark captures a collective's entry state for instrumentation.
type collMark struct {
	sp     *obs.Span
	op     string
	bytes0 int
	t0     time.Time
}

// beginColl opens a per-rank span and notes the byte counter. Only call
// when r.world.obs.Enabled() — callers gate so op-name construction is also
// skipped when telemetry is off.
func (r *Rank) beginColl(op string) collMark {
	tid := r.id
	if r.world.obsTID != nil {
		tid = r.world.obsTID(r.id)
	}
	sp := r.world.obs.Span(tid, op)
	return collMark{sp: sp, op: op,
		bytes0: r.world.stats[r.id].BytesSent, t0: time.Now()}
}

// endColl closes the span and reports bytes moved and latency.
func (r *Rank) endColl(m collMark) {
	d := time.Since(m.t0)
	sent := r.world.stats[r.id].BytesSent - m.bytes0
	m.sp.SetArg("bytes", sent)
	m.sp.End()
	r.world.obs.OnCollective(m.op, sent, d)
}

// AllReduce sums data elementwise across all ranks in place using the given
// algorithm. Falls back to ARTree when the algorithm's preconditions
// (power-of-two size, length >= P) do not hold.
func (r *Rank) AllReduce(data []float64, algo AllReduceAlgorithm) {
	p := r.Size()
	if p == 1 {
		return
	}
	// Resolve the fallback first so telemetry names the algorithm that ran.
	algo = r.resolveAlgo(algo, len(data))
	if r.world.obs.Enabled() {
		defer r.endColl(r.beginColl("allreduce." + algo.String()))
	}
	switch algo {
	case ARRing:
		r.allReduceRing(data, tagAR, tagAG)
	case ARRecursiveDoubling:
		r.allReduceRecDoubling(data, tagAR)
	case ARRabenseifner:
		r.allReduceRabenseifner(data, tagRS, tagAG)
	default:
		r.allReduceTree(data, tagReduce, tagBcast)
	}
}

// resolveAlgo applies AllReduce's fallback rules for a buffer of n elements
// so telemetry and the bucketed reducer both name the algorithm that
// actually runs.
func (r *Rank) resolveAlgo(algo AllReduceAlgorithm, n int) AllReduceAlgorithm {
	p := r.Size()
	switch algo {
	case ARRing:
		if n < p {
			return ARTree
		}
	case ARRecursiveDoubling:
		if p&(p-1) != 0 {
			return ARTree
		}
	case ARRabenseifner:
		if p&(p-1) != 0 || n < p {
			return ARTree
		}
	}
	return algo
}

func (r *Rank) allReduceTree(data []float64, reduceBase, bcastBase int) {
	sum := r.reduceTo(0, data, reduceBase)
	out := r.broadcastFrom(0, sum, bcastBase)
	copy(data, out)
}

func (r *Rank) allReduceRecDoubling(data []float64, base int) {
	p := r.Size()
	for mask := 1; mask < p; mask <<= 1 {
		peer := r.id ^ mask
		in := r.SendRecv(peer, data, peer, base+mask)
		for i := range data {
			data[i] += in[i]
		}
	}
}

// chunkBounds splits n elements into p nearly equal contiguous chunks.
func chunkBounds(n, p, i int) (lo, hi int) {
	base := n / p
	rem := n % p
	lo = i*base + min(i, rem)
	hi = lo + base
	if i < rem {
		hi++
	}
	return lo, hi
}

// allReduceRing is the bandwidth-optimal ring: reduce-scatter then allgather.
// NOTE: the per-element summation order depends on which chunk the element
// lands in (a rotation of rank order), so ring sums are NOT segmentation-
// invariant — reducing a buffer in buckets can differ from reducing it flat
// by float rounding. Tree, recursive-doubling, and Rabenseifner are
// invariant; differential tests that demand bitwise flat/bucketed identity
// must use one of those.
func (r *Rank) allReduceRing(data []float64, rsBase, agBase int) {
	p := r.Size()
	n := len(data)
	right := (r.id + 1) % p
	left := (r.id - 1 + p) % p
	// Reduce-scatter: after P-1 steps rank i owns the fully reduced chunk
	// (i+1) mod p.
	for step := 0; step < p-1; step++ {
		sendChunk := (r.id - step + p) % p
		recvChunk := (r.id - step - 1 + p) % p
		slo, shi := chunkBounds(n, p, sendChunk)
		r.Send(right, rsBase+step, data[slo:shi])
		in := r.Recv(left, rsBase+step)
		rlo, rhi := chunkBounds(n, p, recvChunk)
		for i := rlo; i < rhi; i++ {
			data[i] += in[i-rlo]
		}
	}
	// Allgather: circulate the reduced chunks.
	for step := 0; step < p-1; step++ {
		sendChunk := (r.id + 1 - step + p) % p
		recvChunk := (r.id - step + p) % p
		slo, shi := chunkBounds(n, p, sendChunk)
		r.Send(right, agBase+step, data[slo:shi])
		in := r.Recv(left, agBase+step)
		rlo, rhi := chunkBounds(n, p, recvChunk)
		copy(data[rlo:rhi], in)
	}
}

func (r *Rank) allReduceRabenseifner(data []float64, rsBase, agBase int) {
	p := r.Size()
	n := len(data)
	// Recursive halving reduce-scatter. Each round exchanges half the
	// current window with the peer and reduces the kept half.
	lo, hi := 0, n
	round := 0
	for mask := 1; mask < p; mask <<= 1 {
		peer := r.id ^ mask
		mid := lo + (hi-lo)/2
		var sendLo, sendHi, keepLo, keepHi int
		if r.id&mask == 0 {
			// Keep lower half, send upper.
			sendLo, sendHi, keepLo, keepHi = mid, hi, lo, mid
		} else {
			sendLo, sendHi, keepLo, keepHi = lo, mid, mid, hi
		}
		in := r.SendRecv(peer, data[sendLo:sendHi], peer, rsBase+round)
		for i := keepLo; i < keepHi; i++ {
			data[i] += in[i-keepLo]
		}
		lo, hi = keepLo, keepHi
		round++
	}
	// Recursive doubling allgather, reversing the halving.
	masks := []int{}
	for mask := 1; mask < p; mask <<= 1 {
		masks = append(masks, mask)
	}
	// Reconstruct window history to know what to exchange each round.
	type win struct{ lo, hi int }
	wins := make([]win, len(masks)+1)
	wins[0] = win{0, n}
	cl, ch := 0, n
	for i, mask := range masks {
		mid := cl + (ch-cl)/2
		if r.id&mask == 0 {
			ch = mid
		} else {
			cl = mid
		}
		wins[i+1] = win{cl, ch}
	}
	for i := len(masks) - 1; i >= 0; i-- {
		mask := masks[i]
		peer := r.id ^ mask
		own := wins[i+1]
		outer := wins[i]
		r.Send(peer, agBase+i, data[own.lo:own.hi])
		in := r.Recv(peer, agBase+i)
		// Peer owned the other half of the outer window.
		if own.lo == outer.lo {
			copy(data[own.hi:outer.hi], in)
		} else {
			copy(data[outer.lo:own.lo], in)
		}
	}
}

// AllGather concatenates each rank's equal-length data in rank order and
// returns the (P*len) result on every rank (ring algorithm).
func (r *Rank) AllGather(data []float64) []float64 {
	p := r.Size()
	n := len(data)
	out := make([]float64, p*n)
	copy(out[r.id*n:(r.id+1)*n], data)
	if p == 1 {
		return out
	}
	if r.world.obs.Enabled() {
		defer r.endColl(r.beginColl("allgather"))
	}
	right := (r.id + 1) % p
	left := (r.id - 1 + p) % p
	for step := 0; step < p-1; step++ {
		sendChunk := (r.id - step + p) % p
		recvChunk := (r.id - step - 1 + p) % p
		r.Send(right, tagAG+step, out[sendChunk*n:(sendChunk+1)*n])
		in := r.Recv(left, tagAG+step)
		copy(out[recvChunk*n:(recvChunk+1)*n], in)
	}
	return out
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
