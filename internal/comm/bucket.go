package comm

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/obs"
)

// Bucketed, overlapped collectives.
//
// A BucketReducer gives one rank an asynchronous submission queue for
// gradient buckets: the training goroutine submits each bucket's buffer as
// soon as its gradients are ready (layers finish backward in reverse order),
// and a dedicated per-rank communication goroutine runs the collectives in
// FIFO order while the trainer keeps computing. Because every rank submits
// the same buckets in the same global order, the comm goroutines stay
// pairwise matched and the point-to-point tag discipline holds — each bucket
// gets its own tag window salted by its sequence number, so a mismatch
// between ranks fails loudly instead of silently mixing buckets.
//
// Ownership contract: while a reducer is open, the comm goroutine owns the
// rank's links, Stats counters, and (on a faulty world) the per-link
// retransmit state. The rank goroutine that called NewBucketReducer must not
// issue other comm operations until Close returns.

// tagBucket opens the bucketed tag space above the flat collectives
// (collectives2.go ends at 10<<20). Each in-flight bucket owns a window of
// bucketTagWindow tags: the first half for the reduce/reduce-scatter phase,
// the second half for the broadcast/allgather phase. Windows recycle after
// bucketTagSlots buckets, which is safe because links are FIFO and buckets
// complete in submission order on every rank.
const (
	tagBucket       = 11 << 20
	bucketTagWindow = 8192
	bucketTagSlots  = 128
)

// bucketTagBases returns the two tag bases for bucket sequence number seq.
func bucketTagBases(seq int) (phase1, phase2 int) {
	base := tagBucket + (seq%bucketTagSlots)*bucketTagWindow
	return base, base + bucketTagWindow/2
}

// bucketOp is the collective a submitted bucket runs.
type bucketOp int

const (
	opAllReduce bucketOp = iota
	opAllGather
)

// bucketJob is one queue entry processed by the comm goroutine.
type bucketJob struct {
	op     bucketOp
	data   []float64
	handle *BucketHandle
}

// BucketHandle tracks one submitted bucket. Wait blocks until the bucket's
// collective has completed on this rank (or the reducer failed).
type BucketHandle struct {
	done     chan struct{}
	err      error
	gathered []float64     // AllGather result; nil for AllReduce
	commTime time.Duration // time the comm goroutine spent inside the collective
}

// Wait blocks until the bucket's collective completes and returns its error
// (nil on success). For AllReduce buckets the submitted slice holds the
// elementwise sum across ranks on return.
func (h *BucketHandle) Wait() error {
	<-h.done
	return h.err
}

// Gathered returns the AllGather result (P*len concatenation in rank order).
// Only valid after Wait returns nil; nil for AllReduce buckets.
func (h *BucketHandle) Gathered() []float64 { return h.gathered }

// CommTime returns how long the comm goroutine spent inside this bucket's
// collective, measured on the comm goroutine itself. Valid after Wait.
func (h *BucketHandle) CommTime() time.Duration { return h.commTime }

// BucketReducer runs this rank's bucket collectives on a dedicated
// goroutine. Create one per rank per step (or reuse across steps — sequence
// numbers keep counting), submit buckets in the same order on every rank,
// Wait on the handles, then Close.
type BucketReducer struct {
	rank   *Rank
	algo   AllReduceAlgorithm
	jobs   chan bucketJob
	closed chan struct{}

	mu      sync.Mutex // guards closing vs late submissions
	closing bool

	// Owned by the comm goroutine while open, readable after Close.
	seq       int
	failed    error
	commTotal time.Duration

	// ctx is the trace context buckets run under (set by SetCtx from the
	// training goroutine between steps; read by the comm goroutine).
	ctxMu sync.Mutex
	ctx   obs.Ctx
}

// SetCtx attaches a trace context to subsequent buckets: each bucket span
// carries the trace id as an arg and each bucket's comm time lands in the
// comm.bucket.time histogram with the trace as its exemplar. Call between
// steps from the submitting goroutine; the zero Ctx detaches.
func (br *BucketReducer) SetCtx(c obs.Ctx) {
	br.ctxMu.Lock()
	br.ctx = c
	br.ctxMu.Unlock()
}

func (br *BucketReducer) curCtx() obs.Ctx {
	br.ctxMu.Lock()
	defer br.ctxMu.Unlock()
	return br.ctx
}

// NewBucketReducer starts the comm goroutine. algo selects the allreduce
// algorithm for AllReduce buckets (per-bucket fallback rules as in
// Rank.AllReduce: short buckets fall back to tree, etc.).
func (r *Rank) NewBucketReducer(algo AllReduceAlgorithm) *BucketReducer {
	br := &BucketReducer{
		rank:   r,
		algo:   algo,
		jobs:   make(chan bucketJob, bucketTagSlots),
		closed: make(chan struct{}),
	}
	go br.loop()
	return br
}

// SubmitAllReduce queues data for an elementwise sum across ranks. The
// reducer owns data until the returned handle's Wait completes; the sum is
// written in place.
func (br *BucketReducer) SubmitAllReduce(data []float64) *BucketHandle {
	return br.submit(bucketJob{op: opAllReduce, data: data})
}

// SubmitAllGather queues data for concatenation across ranks (each rank must
// submit equal lengths for the same bucket). The result is available via the
// handle's Gathered after Wait.
func (br *BucketReducer) SubmitAllGather(data []float64) *BucketHandle {
	return br.submit(bucketJob{op: opAllGather, data: data})
}

func (br *BucketReducer) submit(j bucketJob) *BucketHandle {
	j.handle = &BucketHandle{done: make(chan struct{})}
	br.mu.Lock()
	if br.closing {
		br.mu.Unlock()
		j.handle.err = fmt.Errorf("comm: bucket submitted after Close on rank %d", br.rank.id)
		close(j.handle.done)
		return j.handle
	}
	// Holding the lock across the (possibly blocking) send is safe: the comm
	// goroutine always drains the channel, and Close only closes it after
	// taking the lock, so the channel cannot be closed under this send.
	br.jobs <- j
	br.mu.Unlock()
	return j.handle
}

// Close drains the queue, stops the comm goroutine, and returns the sticky
// error if any bucket failed. After Close the rank goroutine owns its links
// again. Close must be called exactly once.
func (br *BucketReducer) Close() error {
	br.mu.Lock()
	br.closing = true
	br.mu.Unlock()
	close(br.jobs)
	<-br.closed
	return br.failed
}

// CommSeconds returns the total time the comm goroutine spent inside
// collectives. Only valid after Close (or after Wait on every handle).
func (br *BucketReducer) CommSeconds() float64 { return br.commTotal.Seconds() }

// loop is the comm goroutine: FIFO over submitted buckets. A panic inside a
// collective (tag mismatch, dead peer watchdog, world re-raise) is captured
// into the bucket's handle and poisons the reducer — subsequent buckets
// complete immediately with the sticky error rather than touching the links,
// so a chaos-killed peer surfaces as an error on every survivor instead of a
// hang.
func (br *BucketReducer) loop() {
	defer close(br.closed)
	for j := range br.jobs {
		if br.failed != nil {
			j.handle.err = br.failed
			close(j.handle.done)
			continue
		}
		br.runJob(j)
	}
}

// runJob executes one bucket collective, converting panics to errors.
func (br *BucketReducer) runJob(j bucketJob) {
	defer func() {
		if p := recover(); p != nil {
			br.failed = fmt.Errorf("comm: bucket %d failed on rank %d: %v",
				br.seq, br.rank.id, p)
			j.handle.err = br.failed
		}
		br.seq++
		close(j.handle.done)
	}()
	phase1, phase2 := bucketTagBases(br.seq)
	var sp *obs.Span
	var ctx obs.Ctx
	if br.rank.world.obs.Enabled() {
		ctx = br.curCtx()
		sp = br.rank.world.obs.Span(br.obsTID(), fmt.Sprintf("bucket%d", br.seq))
	}
	t0 := time.Now()
	switch j.op {
	case opAllReduce:
		br.bucketAllReduce(j.data, phase1, phase2)
	case opAllGather:
		j.handle.gathered = br.bucketAllGather(j.data, phase1)
	}
	j.handle.commTime = time.Since(t0)
	br.commTotal += j.handle.commTime
	if sp != nil {
		sp.SetArg("elems", len(j.data))
		if ctx.Valid() {
			sp.SetArg("trace", ctx.String())
		}
		sp.End()
		br.rank.world.obs.ObserveLatencyTrace("comm.bucket.time", j.handle.commTime, ctx)
	}
}

func (br *BucketReducer) obsTID() int {
	if f := br.rank.world.obsTID; f != nil {
		return f(br.rank.id)
	}
	return br.rank.id
}

// bucketAllReduce is Rank.AllReduce over the bucket's salted tag windows.
// Tree, recursive-doubling, and Rabenseifner sums are segmentation-invariant
// (see reduceTo), so at full precision a bucketed allreduce is bitwise
// identical to a flat one; ring is not (see allReduceRing).
func (br *BucketReducer) bucketAllReduce(data []float64, phase1, phase2 int) {
	r := br.rank
	if r.Size() == 1 {
		return
	}
	switch r.resolveAlgo(br.algo, len(data)) {
	case ARRing:
		r.allReduceRing(data, phase1, phase2)
	case ARRecursiveDoubling:
		r.allReduceRecDoubling(data, phase1)
	case ARRabenseifner:
		r.allReduceRabenseifner(data, phase1, phase2)
	default:
		r.allReduceTree(data, phase1, phase2)
	}
}

// bucketAllGather is the ring allgather over the bucket's tag window.
func (br *BucketReducer) bucketAllGather(data []float64, base int) []float64 {
	r := br.rank
	p := r.Size()
	n := len(data)
	out := make([]float64, p*n)
	copy(out[r.id*n:(r.id+1)*n], data)
	right := (r.id + 1) % p
	left := (r.id - 1 + p) % p
	for step := 0; step < p-1; step++ {
		sendChunk := (r.id - step + p) % p
		recvChunk := (r.id - step - 1 + p) % p
		r.Send(right, base+step, out[sendChunk*n:(sendChunk+1)*n])
		in := r.Recv(left, base+step)
		copy(out[recvChunk*n:(recvChunk+1)*n], in)
	}
	return out
}
