package comm

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

func TestScatter(t *testing.T) {
	for _, p := range []int{1, 2, 3, 5, 8} {
		for root := 0; root < p; root += 2 {
			w := NewWorld(p)
			w.Run(func(r *Rank) {
				var data []float64
				if r.ID() == root {
					data = make([]float64, 2*p)
					for i := range data {
						data[i] = float64(i)
					}
				}
				got := r.Scatter(root, data)
				if len(got) != 2 {
					t.Errorf("p=%d chunk length %d", p, len(got))
					return
				}
				if got[0] != float64(2*r.ID()) || got[1] != float64(2*r.ID()+1) {
					t.Errorf("p=%d root=%d rank=%d got %v", p, root, r.ID(), got)
				}
			})
		}
	}
}

func TestScatterIndivisiblePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("indivisible scatter did not panic")
		}
	}()
	// Only the root participates: the panic must fire before any send, so
	// no peer may block on a receive (that would deadlock the world).
	w := NewWorld(2)
	w.Run(func(r *Rank) {
		if r.ID() == 0 {
			r.Scatter(0, []float64{1, 2, 3})
		}
	})
}

func TestGather(t *testing.T) {
	for _, p := range []int{1, 2, 4, 7} {
		for root := 0; root < p; root += 3 {
			w := NewWorld(p)
			w.Run(func(r *Rank) {
				data := []float64{float64(r.ID() * 10), float64(r.ID()*10 + 1)}
				got := r.Gather(root, data)
				if r.ID() != root {
					if got != nil {
						t.Errorf("non-root got %v", got)
					}
					return
				}
				if len(got) != 2*p {
					t.Errorf("gather length %d", len(got))
					return
				}
				for id := 0; id < p; id++ {
					if got[2*id] != float64(id*10) || got[2*id+1] != float64(id*10+1) {
						t.Errorf("p=%d root=%d got %v", p, root, got)
						return
					}
				}
			})
		}
	}
}

func TestScatterGatherRoundTrip(t *testing.T) {
	const p = 6
	w := NewWorld(p)
	orig := make([]float64, 3*p)
	for i := range orig {
		orig[i] = float64(i * i)
	}
	w.Run(func(r *Rank) {
		var data []float64
		if r.ID() == 2 {
			data = orig
		}
		chunk := r.Scatter(2, data)
		back := r.Gather(2, chunk)
		if r.ID() == 2 {
			for i := range orig {
				if back[i] != orig[i] {
					t.Errorf("round trip mismatch at %d", i)
					return
				}
			}
		}
	})
}

func TestReduceScatter(t *testing.T) {
	for _, p := range []int{1, 2, 4, 8} {
		n := 3 * p
		w := NewWorld(p)
		w.Run(func(r *Rank) {
			data := make([]float64, n)
			for i := range data {
				data[i] = float64(i) + float64(r.ID())*0.001
			}
			got := r.ReduceScatter(data)
			if len(got) != 3 {
				t.Errorf("p=%d chunk length %d", p, len(got))
				return
			}
			// Sum over ranks of element (own*3 + i).
			own := (r.ID() + 1) % p
			if p == 1 {
				own = 0
			}
			for i := range got {
				idx := own*3 + i
				want := float64(p)*float64(idx) + 0.001*float64(p*(p-1))/2
				if math.Abs(got[i]-want) > 1e-9 {
					t.Errorf("p=%d rank=%d elem %d: got %v want %v", p, r.ID(), i, got[i], want)
					return
				}
			}
		})
	}
}

// Property: ReduceScatter chunks, allgathered, equal a full AllReduce.
func TestQuickReduceScatterMatchesAllReduce(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		p := 2 + r.Intn(6)
		perChunk := 1 + r.Intn(5)
		n := p * perChunk
		vecs := make([][]float64, p)
		for id := 0; id < p; id++ {
			vecs[id] = make([]float64, n)
			for i := range vecs[id] {
				vecs[id][i] = r.Norm()
			}
		}
		ok := true
		w := NewWorld(p)
		w.Run(func(rank *Rank) {
			mine := append([]float64(nil), vecs[rank.ID()]...)
			chunk := rank.ReduceScatter(mine)

			full := append([]float64(nil), vecs[rank.ID()]...)
			rank.AllReduce(full, ARTree)

			own := (rank.ID() + 1) % p
			for i := range chunk {
				if math.Abs(chunk[i]-full[own*perChunk+i]) > 1e-9 {
					ok = false
					return
				}
			}
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestAllToAll(t *testing.T) {
	for _, p := range []int{1, 2, 4, 7} {
		w := NewWorld(p)
		w.Run(func(r *Rank) {
			// Chunk j from rank i carries value i*100 + j.
			data := make([]float64, 2*p)
			for j := 0; j < p; j++ {
				data[2*j] = float64(r.ID()*100 + j)
				data[2*j+1] = -float64(r.ID()*100 + j)
			}
			out := r.AllToAll(data)
			for i := 0; i < p; i++ {
				want := float64(i*100 + r.ID())
				if out[2*i] != want || out[2*i+1] != -want {
					t.Errorf("p=%d rank=%d chunk %d: %v", p, r.ID(), i, out[2*i:2*i+2])
					return
				}
			}
		})
	}
}

// Property: AllToAll applied twice restores the original data
// (it is a transpose of the rank x chunk matrix).
func TestQuickAllToAllInvolution(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		p := 1 + r.Intn(6)
		n := 1 + r.Intn(4)
		vecs := make([][]float64, p)
		for id := 0; id < p; id++ {
			vecs[id] = make([]float64, p*n)
			for i := range vecs[id] {
				vecs[id][i] = r.Norm()
			}
		}
		ok := true
		w := NewWorld(p)
		w.Run(func(rank *Rank) {
			once := rank.AllToAll(vecs[rank.ID()])
			twice := rank.AllToAll(once)
			for i := range twice {
				if twice[i] != vecs[rank.ID()][i] {
					ok = false
					return
				}
			}
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
