package comm

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"repro/internal/fault"
)

// testLinkFault is a lossy-but-survivable fabric: 5% drops, 5% duplicates,
// 5% silent bit flips, 10% delays.
func testLinkFault() fault.LinkFault {
	return fault.LinkFault{DropProb: 0.05, DupProb: 0.05, CorruptProb: 0.05, DelayProb: 0.1}
}

// sumStats aggregates every rank's counters.
func sumStats(w *World) Stats {
	var total Stats
	for i := 0; i < w.Size(); i++ {
		st := w.Stats(i)
		total.MsgsSent += st.MsgsSent
		total.BytesSent += st.BytesSent
		total.Retransmits += st.Retransmits
		total.RetransmitBytes += st.RetransmitBytes
		total.FramesDropped += st.FramesDropped
		total.FramesCorrupted += st.FramesCorrupted
		total.FramesDuplicated += st.FramesDuplicated
		total.CorruptDetected += st.CorruptDetected
		total.DupsDropped += st.DupsDropped
		total.DelaysInjected += st.DelaysInjected
	}
	return total
}

// TestChaosFlakyLinkAllReduceExact runs every allreduce algorithm over a
// lossy fabric: the sums must come out bit-exact on every rank — silent
// corruption may cost retransmits, never wrong floats.
func TestChaosFlakyLinkAllReduceExact(t *testing.T) {
	const p, n = 8, 96
	for _, algo := range []AllReduceAlgorithm{ARRing, ARRecursiveDoubling, ARTree, ARRabenseifner} {
		t.Run(algo.String(), func(t *testing.T) {
			w := NewWorld(p)
			if err := w.SetLinkFaults(testLinkFault(), 42); err != nil {
				t.Fatal(err)
			}
			results := make([][]float64, p)
			w.Run(func(r *Rank) {
				data := make([]float64, n)
				for i := range data {
					data[i] = float64(r.ID()*n + i)
				}
				r.AllReduce(data, algo)
				results[r.ID()] = data
			})
			for i := 0; i < n; i++ {
				want := 0.0
				for rank := 0; rank < p; rank++ {
					want += float64(rank*n + i)
				}
				for rank := 0; rank < p; rank++ {
					if results[rank][i] != want {
						t.Fatalf("%s: rank %d element %d = %v, want %v (corruption delivered silently)",
							algo, rank, i, results[rank][i], want)
					}
				}
			}
			st := sumStats(w)
			if st.FramesDropped == 0 || st.FramesCorrupted == 0 || st.FramesDuplicated == 0 {
				t.Fatalf("injector idle on a 5%%/5%%/5%% fabric: %+v", st)
			}
			if st.Retransmits < st.FramesDropped+st.FramesCorrupted {
				t.Fatalf("retransmits %d < injected losses %d: a loss went unrepaired",
					st.Retransmits, st.FramesDropped+st.FramesCorrupted)
			}
			if st.CorruptDetected != st.FramesCorrupted {
				t.Fatalf("receiver detected %d corruptions, injector made %d",
					st.CorruptDetected, st.FramesCorrupted)
			}
			// A duplicate rides behind its accepted twin, so one injected on
			// a link's final exchange may still sit in the channel at exit —
			// but dedup must catch the mid-stream ones and never over-count.
			if st.DupsDropped > st.FramesDuplicated {
				t.Fatalf("receiver dropped %d dups, injector made only %d",
					st.DupsDropped, st.FramesDuplicated)
			}
			if st.FramesDuplicated > 8 && st.DupsDropped == 0 {
				t.Fatalf("%d duplicates injected, none deduplicated", st.FramesDuplicated)
			}
			if st.RetransmitBytes <= 0 {
				t.Fatal("retransmit overhead not measured")
			}
		})
	}
}

// TestChaosFlakyLinkBroadcastAndBarrier covers the remaining collectives on
// the lossy fabric, including zero-length (barrier) frames.
func TestChaosFlakyLinkBroadcastAndBarrier(t *testing.T) {
	const p = 8
	w := NewWorld(p)
	if err := w.SetLinkFaults(testLinkFault(), 7); err != nil {
		t.Fatal(err)
	}
	payload := []float64{3.25, -1e300, 0, 7}
	got := make([][]float64, p)
	gathered := make([][]float64, p)
	w.Run(func(r *Rank) {
		r.Barrier()
		got[r.ID()] = r.Broadcast(2, append([]float64(nil), payload...))
		r.Barrier()
		gathered[r.ID()] = r.AllGather([]float64{float64(r.ID())})
	})
	for rank := 0; rank < p; rank++ {
		for i, v := range payload {
			if got[rank][i] != v {
				t.Fatalf("broadcast on rank %d: element %d = %v, want %v", rank, i, got[rank][i], v)
			}
		}
		for i := 0; i < p; i++ {
			if gathered[rank][i] != float64(i) {
				t.Fatalf("allgather on rank %d: slot %d = %v", rank, i, gathered[rank][i])
			}
		}
	}
}

// TestFlakyLinkDeterministic: the same seed yields the identical fault
// history (every counter), regardless of goroutine interleaving, because
// each directed link owns its own split stream.
func TestFlakyLinkDeterministic(t *testing.T) {
	run := func() Stats {
		w := NewWorld(4)
		if err := w.SetLinkFaults(testLinkFault(), 1234); err != nil {
			t.Fatal(err)
		}
		w.Run(func(r *Rank) {
			data := make([]float64, 32)
			for rep := 0; rep < 5; rep++ {
				r.AllReduce(data, ARRing)
				r.Barrier()
			}
		})
		return sumStats(w)
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("same seed, different fault history:\n%+v\n%+v", a, b)
	}
	if a.Retransmits == 0 {
		t.Fatal("fabric injected nothing")
	}
}

// TestFlakyLinkValidation rejects impossible fault configurations.
func TestFlakyLinkValidation(t *testing.T) {
	w := NewWorld(2)
	if err := w.SetLinkFaults(fault.LinkFault{DropProb: 1.5}, 1); err == nil {
		t.Fatal("accepted DropProb 1.5")
	}
	if err := w.SetLinkFaults(fault.LinkFault{DropProb: 0.5, CorruptProb: 0.5}, 1); err == nil {
		t.Fatal("accepted a fabric that can never deliver")
	}
}

// TestRecvTimeoutWatchdog: a receive from a silent peer must fail loudly
// with an attributable panic, not hang the collective forever.
func TestRecvTimeoutWatchdog(t *testing.T) {
	w := NewWorld(2)
	w.SetRecvTimeout(20 * time.Millisecond)
	defer func() {
		p := recover()
		if p == nil {
			t.Fatal("lost peer did not trip the watchdog")
		}
		msg := fmt.Sprint(p)
		if !strings.Contains(msg, "timed out") || !strings.Contains(msg, "rank 1") {
			t.Fatalf("watchdog panic does not name the stall: %v", msg)
		}
	}()
	w.Run(func(r *Rank) {
		if r.ID() == 1 {
			r.Recv(0, 99) // rank 0 never sends: the gray hang
		}
	})
}

// TestRecvTimeoutDoesNotFireOnHealthyTraffic: the watchdog must be
// invisible when peers answer in time.
func TestRecvTimeoutDoesNotFireOnHealthyTraffic(t *testing.T) {
	w := NewWorld(4)
	w.SetRecvTimeout(5 * time.Second)
	w.Run(func(r *Rank) {
		data := []float64{float64(r.ID())}
		r.AllReduce(data, ARTree)
		if data[0] != 6 {
			panic("wrong sum")
		}
	})
}
