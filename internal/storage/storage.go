// Package storage simulates training-data placement across a node's memory
// and storage tiers — the paper's "large quantities of training data to be
// made available or generated at each node, thus providing opportunities
// for NVRAM" claim, made quantitative.
//
// An epoch is modelled as a sequence of steps, each needing one batch of
// bytes from some tier before its compute can run. Policies differ in where
// the bytes live and whether reads overlap compute; the discrete-event
// engine (internal/sim) produces exact timelines with per-step stall
// accounting.
package storage

import (
	"fmt"
	"math"

	"repro/internal/machine"
	"repro/internal/sim"
)

// Policy selects a data-staging strategy.
type Policy int

// Available staging policies.
const (
	// DirectPFS reads every batch synchronously from the parallel file
	// system (the no-burst-buffer baseline).
	DirectPFS Policy = iota
	// StageNVRAM copies the dataset to node-local NVRAM once, then reads
	// batches synchronously from NVRAM.
	StageNVRAM
	// PrefetchNVRAM stages to NVRAM and double-buffers batch reads so they
	// overlap compute.
	PrefetchNVRAM
	// PrefetchPFS double-buffers directly against the PFS (no staging).
	PrefetchPFS
	// ResidentDRAM holds the whole dataset in DRAM (only valid when it
	// fits); reads cost DRAM bandwidth and overlap compute.
	ResidentDRAM
	// ShardNVRAM stages 1/ShardNodes of the dataset into each node's NVRAM;
	// batch reads are mostly remote over the fabric but avoid the PFS
	// entirely after staging. Feasible even when the full dataset exceeds
	// one node's NVRAM.
	ShardNVRAM
)

// String names the policy.
func (p Policy) String() string {
	switch p {
	case DirectPFS:
		return "direct-pfs"
	case StageNVRAM:
		return "stage-nvram"
	case PrefetchNVRAM:
		return "prefetch-nvram"
	case PrefetchPFS:
		return "prefetch-pfs"
	case ResidentDRAM:
		return "resident-dram"
	case ShardNVRAM:
		return "shard-nvram"
	default:
		return "policy?"
	}
}

// AllPolicies lists every staging policy.
func AllPolicies() []Policy {
	return []Policy{DirectPFS, StageNVRAM, PrefetchNVRAM, PrefetchPFS, ResidentDRAM, ShardNVRAM}
}

// Config describes a training run's data demands.
type Config struct {
	// DatasetBytes is the full training set size per node.
	DatasetBytes float64
	// BatchBytes is the bytes consumed per training step.
	BatchBytes float64
	// StepsPerEpoch is the number of batches per epoch.
	StepsPerEpoch int
	// Epochs is the number of passes over the data.
	Epochs int
	// ComputePerStep is the pure compute time of one step in seconds.
	ComputePerStep float64
	// SharedPFSNodes is the number of nodes concurrently hammering the
	// parallel file system; each node sees 1/SharedPFSNodes of PFS
	// bandwidth. 0 or 1 means a dedicated PFS. Node-local tiers (DRAM,
	// NVRAM) are unaffected — this contention is exactly why the paper
	// argues for node-local NVRAM.
	SharedPFSNodes int
	// ShardNodes is the number of nodes a ShardNVRAM policy spreads the
	// dataset across (defaults to SharedPFSNodes, minimum 2).
	ShardNodes int
	// FabricBps is the node-to-node bandwidth remote shard reads use
	// (defaults to 10 GB/s).
	FabricBps float64
}

// EffectivePFS returns the node's PFS tier with bandwidth derated by the
// configured sharing factor.
func EffectivePFS(node *machine.Node, cfg Config) (machine.MemTier, bool) {
	pfs, ok := node.TierByName("PFS")
	if !ok {
		return machine.MemTier{}, false
	}
	if cfg.SharedPFSNodes > 1 {
		pfs.BandwidthBps /= float64(cfg.SharedPFSNodes)
	}
	return pfs, true
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.DatasetBytes <= 0 || c.BatchBytes <= 0 || c.StepsPerEpoch <= 0 ||
		c.Epochs <= 0 || c.ComputePerStep < 0 {
		return fmt.Errorf("storage: invalid config %+v", c)
	}
	return nil
}

// Result summarises a simulated run.
type Result struct {
	Policy    Policy
	TotalTime float64 // wall-clock seconds
	StageTime float64 // one-time staging cost included in TotalTime
	StallTime float64 // compute-idle time waiting on data
	IOTime    float64 // total time spent moving batch data
	// StallFraction is StallTime / TotalTime.
	StallFraction float64
}

func (r Result) String() string {
	return fmt.Sprintf("%-14s total=%8.2fs stage=%7.2fs stall=%8.2fs (%.1f%%)",
		r.Policy, r.TotalTime, r.StageTime, r.StallTime, 100*r.StallFraction)
}

// readTime returns the synchronous read cost of `bytes` from tier t.
func readTime(t machine.MemTier, bytes float64) float64 {
	return t.LatencySec + bytes/t.BandwidthBps
}

// Simulate runs the configured training timeline on the given node under
// the given policy and returns exact timing. It returns an error when the
// policy's capacity preconditions do not hold (e.g. ResidentDRAM with a
// dataset larger than DRAM).
func Simulate(node *machine.Node, policy Policy, cfg Config) (Result, error) {
	if err := cfg.Validate(); err != nil {
		return Result{}, err
	}
	pfs, ok := EffectivePFS(node, cfg)
	if !ok {
		return Result{}, fmt.Errorf("storage: node %s has no PFS tier", node.Name)
	}
	res := Result{Policy: policy}

	switch policy {
	case DirectPFS:
		simulateSync(&res, pfs, cfg)
	case StageNVRAM, PrefetchNVRAM:
		nvram, ok := node.TierByName("NVRAM")
		if !ok {
			return Result{}, fmt.Errorf("storage: node %s has no NVRAM tier", node.Name)
		}
		if cfg.DatasetBytes > nvram.CapacityBytes {
			return Result{}, fmt.Errorf("storage: dataset (%.0f GB) exceeds NVRAM (%.0f GB)",
				cfg.DatasetBytes/machine.GB, nvram.CapacityBytes/machine.GB)
		}
		res.StageTime = machine.StageDataTime(pfs, nvram, cfg.DatasetBytes)
		if policy == StageNVRAM {
			simulateSync(&res, nvram, cfg)
		} else {
			simulatePrefetch(&res, nvram, cfg)
		}
		res.TotalTime += res.StageTime
	case PrefetchPFS:
		simulatePrefetch(&res, pfs, cfg)
	case ShardNVRAM:
		nvram, ok := node.TierByName("NVRAM")
		if !ok {
			return Result{}, fmt.Errorf("storage: node %s has no NVRAM tier", node.Name)
		}
		shards := cfg.ShardNodes
		if shards <= 0 {
			shards = cfg.SharedPFSNodes
		}
		if shards < 2 {
			shards = 2
		}
		perNode := cfg.DatasetBytes / float64(shards)
		if perNode > nvram.CapacityBytes {
			return Result{}, fmt.Errorf("storage: shard (%.0f GB) exceeds NVRAM (%.0f GB)",
				perNode/machine.GB, nvram.CapacityBytes/machine.GB)
		}
		// Each node stages only its shard (the PFS contention applies).
		res.StageTime = machine.StageDataTime(pfs, nvram, perNode)
		// Per-step read: 1/shards local from NVRAM, the rest remote over
		// the fabric from peer NVRAM (bounded by the slower of the two).
		fabric := cfg.FabricBps
		if fabric <= 0 {
			fabric = 10 * machine.GB
		}
		remoteBps := math.Min(fabric, nvram.BandwidthBps)
		effTier := machine.MemTier{
			Name:       "shard-nvram",
			LatencySec: nvram.LatencySec,
			BandwidthBps: 1 / (1/float64(shards)/nvram.BandwidthBps +
				(1-1/float64(shards))/remoteBps),
			CapacityBytes: nvram.CapacityBytes * float64(shards),
		}
		simulatePrefetch(&res, effTier, cfg)
		res.TotalTime += res.StageTime
	case ResidentDRAM:
		dram, ok := node.TierByName("DRAM")
		if !ok {
			return Result{}, fmt.Errorf("storage: node %s has no DRAM tier", node.Name)
		}
		if cfg.DatasetBytes > dram.CapacityBytes {
			return Result{}, fmt.Errorf("storage: dataset (%.0f GB) exceeds DRAM (%.0f GB)",
				cfg.DatasetBytes/machine.GB, dram.CapacityBytes/machine.GB)
		}
		res.StageTime = machine.StageDataTime(pfs, dram, cfg.DatasetBytes)
		simulatePrefetch(&res, dram, cfg)
		res.TotalTime += res.StageTime
	default:
		return Result{}, fmt.Errorf("storage: unknown policy %d", policy)
	}
	if res.TotalTime > 0 {
		res.StallFraction = res.StallTime / res.TotalTime
	}
	return res, nil
}

// simulateSync models read-then-compute with no overlap.
func simulateSync(res *Result, tier machine.MemTier, cfg Config) {
	steps := cfg.StepsPerEpoch * cfg.Epochs
	rt := readTime(tier, cfg.BatchBytes)
	res.IOTime = rt * float64(steps)
	res.StallTime = res.IOTime // every read blocks compute
	res.TotalTime += float64(steps)*cfg.ComputePerStep + res.IOTime
}

// simulatePrefetch models a double-buffered loader: a reader fills a 2-slot
// buffer from the tier while compute drains it. Implemented on the DES
// engine for exact stall accounting.
func simulatePrefetch(res *Result, tier machine.MemTier, cfg Config) {
	eng := sim.NewEngine()
	steps := cfg.StepsPerEpoch * cfg.Epochs
	rt := readTime(tier, cfg.BatchBytes)

	const slots = 2
	ready := 0       // filled buffer slots
	reading := false // reader busy
	issued := 0      // batches read or being read
	consumed := 0    // batches computed
	computing := false
	var stall, lastHungry float64
	hungry := false // compute idle, waiting on data

	var tryRead, tryCompute func()
	tryRead = func() {
		if reading || issued >= steps || ready+boolInt(reading) >= slots {
			return
		}
		reading = true
		issued++
		res.IOTime += rt
		eng.Schedule(rt, func() {
			reading = false
			ready++
			tryCompute()
			tryRead()
		})
	}
	tryCompute = func() {
		if computing || consumed >= steps {
			return
		}
		if ready == 0 {
			if !hungry {
				hungry = true
				lastHungry = eng.Now()
			}
			return
		}
		if hungry {
			stall += eng.Now() - lastHungry
			hungry = false
		}
		computing = true
		ready--
		tryRead()
		eng.Schedule(cfg.ComputePerStep, func() {
			computing = false
			consumed++
			tryCompute()
		})
	}
	// Kick off: compute is hungry from t=0 until the first batch lands.
	hungry = true
	lastHungry = 0
	tryRead()
	end := eng.Run()
	res.StallTime += stall
	res.TotalTime += end
}

func boolInt(b bool) int {
	if b {
		return 1
	}
	return 0
}

// CompareAll simulates every applicable policy and returns results in policy
// order, skipping policies whose capacity preconditions fail.
func CompareAll(node *machine.Node, cfg Config) []Result {
	var out []Result
	for _, p := range AllPolicies() {
		r, err := Simulate(node, p, cfg)
		if err != nil {
			continue
		}
		out = append(out, r)
	}
	return out
}

// IdealTime returns the data-free lower bound: pure compute.
func IdealTime(cfg Config) float64 {
	return float64(cfg.StepsPerEpoch*cfg.Epochs) * cfg.ComputePerStep
}

// Efficiency returns ideal/actual for a result (1 = no data overhead).
func Efficiency(r Result, cfg Config) float64 {
	if r.TotalTime == 0 {
		return math.NaN()
	}
	return IdealTime(cfg) / r.TotalTime
}
