package storage

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/machine"
	"repro/internal/rng"
)

// testCfg is internally consistent: StepsPerEpoch * BatchBytes covers the
// dataset, and 16 nodes share the PFS (the contention that motivates
// node-local NVRAM).
func testCfg() Config {
	return Config{
		DatasetBytes:   20 * machine.GB,
		BatchBytes:     10 * machine.MB,
		StepsPerEpoch:  2000,
		Epochs:         5,
		ComputePerStep: 0.01,
		SharedPFSNodes: 16,
	}
}

func node() *machine.Node { return &machine.GPU2017(1).Node }

func TestValidate(t *testing.T) {
	if err := testCfg().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := testCfg()
	bad.Epochs = 0
	if err := bad.Validate(); err == nil {
		t.Fatal("invalid config accepted")
	}
	if _, err := Simulate(node(), DirectPFS, bad); err == nil {
		t.Fatal("Simulate accepted invalid config")
	}
}

func TestDirectPFSStallsDominate(t *testing.T) {
	cfg := testCfg()
	r, err := Simulate(node(), DirectPFS, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// 10 MB per step at 1 GB/s = 10ms read vs 10ms compute: ~half stalled.
	if r.StallFraction < 0.3 {
		t.Fatalf("direct PFS stall fraction %.2f too low", r.StallFraction)
	}
	want := IdealTime(cfg) + r.StallTime
	if math.Abs(r.TotalTime-want) > 1e-9 {
		t.Fatalf("sync accounting: total %v want %v", r.TotalTime, want)
	}
}

func TestNVRAMStagingBeatsDirectPFS(t *testing.T) {
	cfg := testCfg()
	direct, err := Simulate(node(), DirectPFS, cfg)
	if err != nil {
		t.Fatal(err)
	}
	staged, err := Simulate(node(), StageNVRAM, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if staged.TotalTime >= direct.TotalTime {
		t.Fatalf("NVRAM staging (%v) not faster than direct PFS (%v) over %d epochs",
			staged.TotalTime, direct.TotalTime, cfg.Epochs)
	}
	if staged.StageTime <= 0 {
		t.Fatal("staging cost missing")
	}
}

func TestPrefetchHidesIO(t *testing.T) {
	cfg := testCfg()
	sync, err := Simulate(node(), StageNVRAM, cfg)
	if err != nil {
		t.Fatal(err)
	}
	pre, err := Simulate(node(), PrefetchNVRAM, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if pre.TotalTime >= sync.TotalTime {
		t.Fatalf("prefetch (%v) not faster than sync reads (%v)", pre.TotalTime, sync.TotalTime)
	}
	// NVRAM read (10MB / 6GB/s ≈ 1.7ms) < compute (10ms): stalls ≈ only the
	// initial fill.
	if pre.StallTime > 0.1 {
		t.Fatalf("prefetch stall %v should be near zero", pre.StallTime)
	}
}

func TestPrefetchCannotBeatBandwidth(t *testing.T) {
	// When reads are slower than compute, prefetch's makespan is
	// read-bound: total >= steps * readTime.
	cfg := testCfg()
	cfg.ComputePerStep = 0.0001
	r, err := Simulate(node(), PrefetchPFS, cfg)
	if err != nil {
		t.Fatal(err)
	}
	pfs, _ := EffectivePFS(node(), cfg)
	readT := pfs.LatencySec + cfg.BatchBytes/pfs.BandwidthBps
	lower := float64(cfg.StepsPerEpoch*cfg.Epochs) * readT
	if r.TotalTime < lower*0.999 {
		t.Fatalf("prefetch total %v below IO lower bound %v", r.TotalTime, lower)
	}
}

func TestResidentDRAMNearIdeal(t *testing.T) {
	cfg := testCfg()
	cfg.DatasetBytes = 10 * machine.GB // fits DRAM (256 GB)
	r, err := Simulate(node(), ResidentDRAM, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Post-staging, efficiency should be essentially 1.
	postStage := r.TotalTime - r.StageTime
	if postStage > IdealTime(cfg)*1.05 {
		t.Fatalf("resident DRAM epoch time %v vs ideal %v", postStage, IdealTime(cfg))
	}
}

func TestCapacityPreconditions(t *testing.T) {
	cfg := testCfg()
	cfg.DatasetBytes = 10 * machine.TB // exceeds NVRAM (1.5 TB) and DRAM
	if _, err := Simulate(node(), StageNVRAM, cfg); err == nil {
		t.Fatal("oversized dataset accepted for NVRAM staging")
	}
	if _, err := Simulate(node(), ResidentDRAM, cfg); err == nil {
		t.Fatal("oversized dataset accepted for DRAM residency")
	}
	// Direct PFS still works.
	if _, err := Simulate(node(), DirectPFS, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestCompareAllSkipsInfeasible(t *testing.T) {
	cfg := testCfg()
	cfg.DatasetBytes = 10 * machine.TB
	results := CompareAll(node(), cfg)
	for _, r := range results {
		if r.Policy == StageNVRAM || r.Policy == ResidentDRAM || r.Policy == PrefetchNVRAM {
			t.Fatalf("infeasible policy %v returned", r.Policy)
		}
	}
	// direct-pfs, prefetch-pfs, and shard-nvram (10 TB / 16 nodes fits).
	if len(results) != 3 {
		t.Fatalf("expected 3 feasible policies, got %d", len(results))
	}
}

func TestShardNVRAM(t *testing.T) {
	// Dataset too big for one node's NVRAM but shardable across 16.
	// Full epochs over the dataset (10 TB in 1 GB batches) so the one-time
	// staging cost can amortise.
	cfg := testCfg()
	cfg.DatasetBytes = 10 * machine.TB
	cfg.BatchBytes = 1 * machine.GB
	cfg.StepsPerEpoch = 10000
	if _, err := Simulate(node(), StageNVRAM, cfg); err == nil {
		t.Fatal("full staging of 10 TB should be infeasible")
	}
	shard, err := Simulate(node(), ShardNVRAM, cfg)
	if err != nil {
		t.Fatal(err)
	}
	direct, err := Simulate(node(), DirectPFS, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if shard.TotalTime >= direct.TotalTime {
		t.Fatalf("sharded NVRAM (%v) not faster than direct PFS (%v)",
			shard.TotalTime, direct.TotalTime)
	}
	if shard.StageTime <= 0 {
		t.Fatal("shard staging cost missing")
	}
	// Sharding across more nodes must not slow staging down.
	cfg2 := cfg
	cfg2.ShardNodes = 64
	shard64, err := Simulate(node(), ShardNVRAM, cfg2)
	if err != nil {
		t.Fatal(err)
	}
	if shard64.StageTime > shard.StageTime {
		t.Fatalf("more shards increased staging: %v vs %v", shard64.StageTime, shard.StageTime)
	}
}

func TestPolicyOrderingMatchesPaper(t *testing.T) {
	// The paper's claim: node-local NVRAM recovers most of in-memory
	// performance once data exceeds DRAM. Ordering by total time must be
	// resident <= prefetch-nvram <= prefetch-pfs <= direct-pfs for an
	// IO-heavy workload (allowing equality).
	cfg := testCfg()
	times := map[Policy]float64{}
	for _, p := range AllPolicies() {
		r, err := Simulate(node(), p, cfg)
		if err != nil {
			t.Fatalf("%v: %v", p, err)
		}
		times[p] = r.TotalTime
	}
	if !(times[ResidentDRAM] <= times[PrefetchNVRAM]*1.001 &&
		times[PrefetchNVRAM] <= times[PrefetchPFS]*1.001 &&
		times[PrefetchPFS] <= times[DirectPFS]*1.001) {
		t.Fatalf("policy ordering violated: %v", times)
	}
}

// Property: total time always >= max(ideal compute, total IO when
// unoverlapped is impossible) and stall fraction in [0,1].
func TestQuickInvariants(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		cfg := Config{
			DatasetBytes:   r.Uniform(1, 200) * machine.GB,
			BatchBytes:     r.Uniform(0.1, 50) * machine.MB,
			StepsPerEpoch:  1 + r.Intn(50),
			Epochs:         1 + r.Intn(5),
			ComputePerStep: r.Uniform(0.0001, 0.05),
			SharedPFSNodes: 1 + r.Intn(32),
		}
		for _, p := range AllPolicies() {
			res, err := Simulate(node(), p, cfg)
			if err != nil {
				continue
			}
			if res.TotalTime < IdealTime(cfg)*0.999 {
				return false
			}
			if res.StallFraction < 0 || res.StallFraction > 1 {
				return false
			}
			if e := Efficiency(res, cfg); e < 0 || e > 1.001 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestPolicyStrings(t *testing.T) {
	for _, p := range AllPolicies() {
		if p.String() == "policy?" {
			t.Fatalf("policy %d has no name", p)
		}
	}
}
