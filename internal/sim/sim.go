// Package sim is a small deterministic discrete-event simulation kernel:
// an event queue ordered by (time, insertion sequence), plus capacity-
// constrained resources with FIFO wait queues. The storage-tier simulator
// and the large-scale campaign scheduler are built on it.
//
// The kernel is callback-style (no goroutines), so runs are exactly
// reproducible and cheap enough to simulate millions of events.
package sim

import "container/heap"

// Engine owns simulated time and the pending event queue.
type Engine struct {
	now   float64
	seq   int
	queue eventHeap
}

type event struct {
	time float64
	seq  int // tiebreaker: FIFO among simultaneous events
	fn   func()
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].time != h[j].time {
		return h[i].time < h[j].time
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

// NewEngine returns an engine at time 0 with an empty queue.
func NewEngine() *Engine { return &Engine{} }

// Now returns the current simulated time.
func (e *Engine) Now() float64 { return e.now }

// Schedule queues fn to run delay time units from now. Negative delays
// clamp to zero (run "now", after already-queued simultaneous events).
func (e *Engine) Schedule(delay float64, fn func()) {
	if delay < 0 {
		delay = 0
	}
	e.At(e.now+delay, fn)
}

// At queues fn at absolute time t (clamped to now).
func (e *Engine) At(t float64, fn func()) {
	if t < e.now {
		t = e.now
	}
	heap.Push(&e.queue, event{time: t, seq: e.seq, fn: fn})
	e.seq++
}

// Run executes events until the queue drains, returning the final time.
func (e *Engine) Run() float64 {
	for e.queue.Len() > 0 {
		ev := heap.Pop(&e.queue).(event)
		e.now = ev.time
		ev.fn()
	}
	return e.now
}

// RunUntil executes events with time <= tEnd, advancing the clock to tEnd
// (later events remain queued). It returns the number of events executed.
func (e *Engine) RunUntil(tEnd float64) int {
	executed := 0
	for e.queue.Len() > 0 && e.queue[0].time <= tEnd {
		ev := heap.Pop(&e.queue).(event)
		e.now = ev.time
		ev.fn()
		executed++
	}
	if e.now < tEnd {
		e.now = tEnd
	}
	return executed
}

// Pending returns the number of queued events.
func (e *Engine) Pending() int { return e.queue.Len() }

// Resource is a capacity-limited resource with a FIFO wait queue.
// Acquire hands the caller a release function; holding more than capacity
// concurrently is impossible.
type Resource struct {
	eng      *Engine
	capacity int
	inUse    int
	waiters  []func(release func())
	// Busy integrates units-in-use over time for utilisation reporting.
	busyIntegral float64
	lastChange   float64
}

// NewResource creates a resource with the given capacity on engine e.
func NewResource(e *Engine, capacity int) *Resource {
	if capacity <= 0 {
		panic("sim: resource capacity must be positive")
	}
	return &Resource{eng: e, capacity: capacity}
}

// Acquire requests one unit. fn runs (as a scheduled event) once a unit is
// available, receiving a release callback that must be invoked exactly once.
// The unit is reserved synchronously, so capacity can never be oversubscribed
// even when many acquisitions are issued before the engine runs.
func (r *Resource) Acquire(fn func(release func())) {
	if r.inUse < r.capacity {
		r.grant(fn)
	} else {
		r.waiters = append(r.waiters, fn)
	}
}

// waiters holds pending acquisition callbacks in FIFO order; grant reserves
// a unit immediately and schedules the callback.
func (r *Resource) grant(fn func(release func())) {
	r.accumulate()
	r.inUse++
	released := false
	release := func() {
		if released {
			panic("sim: double release")
		}
		released = true
		r.accumulate()
		r.inUse--
		if len(r.waiters) > 0 {
			next := r.waiters[0]
			r.waiters = r.waiters[1:]
			r.grant(next)
		}
	}
	r.eng.Schedule(0, func() { fn(release) })
}

func (r *Resource) accumulate() {
	now := r.eng.Now()
	r.busyIntegral += float64(r.inUse) * (now - r.lastChange)
	r.lastChange = now
}

// InUse returns the currently held unit count.
func (r *Resource) InUse() int { return r.inUse }

// QueueLen returns the number of waiting acquisitions.
func (r *Resource) QueueLen() int { return len(r.waiters) }

// Utilization returns mean busy units / capacity over [0, now].
func (r *Resource) Utilization() float64 {
	r.accumulate()
	now := r.eng.Now()
	if now == 0 {
		return 0
	}
	return r.busyIntegral / (now * float64(r.capacity))
}
