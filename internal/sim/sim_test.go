package sim

import (
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

func TestEventOrdering(t *testing.T) {
	e := NewEngine()
	var order []int
	e.Schedule(5, func() { order = append(order, 2) })
	e.Schedule(1, func() { order = append(order, 1) })
	e.Schedule(9, func() { order = append(order, 3) })
	end := e.Run()
	if end != 9 {
		t.Fatalf("end time %v", end)
	}
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("order %v", order)
	}
}

func TestSimultaneousEventsFIFO(t *testing.T) {
	e := NewEngine()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.Schedule(3, func() { order = append(order, i) })
	}
	e.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("simultaneous events not FIFO: %v", order)
		}
	}
}

func TestNestedScheduling(t *testing.T) {
	e := NewEngine()
	var times []float64
	e.Schedule(1, func() {
		times = append(times, e.Now())
		e.Schedule(2, func() {
			times = append(times, e.Now())
		})
	})
	e.Run()
	if len(times) != 2 || times[0] != 1 || times[1] != 3 {
		t.Fatalf("times %v", times)
	}
}

func TestNegativeDelayClamps(t *testing.T) {
	e := NewEngine()
	ran := false
	e.Schedule(5, func() {
		e.Schedule(-3, func() {
			ran = true
			if e.Now() != 5 {
				t.Errorf("negative delay ran at %v", e.Now())
			}
		})
	})
	e.Run()
	if !ran {
		t.Fatal("clamped event never ran")
	}
}

func TestRunUntil(t *testing.T) {
	e := NewEngine()
	count := 0
	for i := 1; i <= 10; i++ {
		e.Schedule(float64(i), func() { count++ })
	}
	n := e.RunUntil(5)
	if n != 5 || count != 5 {
		t.Fatalf("RunUntil executed %d events (count %d)", n, count)
	}
	if e.Now() != 5 {
		t.Fatalf("clock at %v", e.Now())
	}
	if e.Pending() != 5 {
		t.Fatalf("%d events pending", e.Pending())
	}
	e.Run()
	if count != 10 {
		t.Fatalf("final count %d", count)
	}
}

func TestResourceCapacityNeverExceeded(t *testing.T) {
	e := NewEngine()
	res := NewResource(e, 3)
	maxSeen := 0
	for i := 0; i < 20; i++ {
		res.Acquire(func(release func()) {
			if res.InUse() > maxSeen {
				maxSeen = res.InUse()
			}
			e.Schedule(2, release)
		})
	}
	e.Run()
	if maxSeen != 3 {
		t.Fatalf("max concurrent %d want 3", maxSeen)
	}
}

func TestResourceFIFO(t *testing.T) {
	e := NewEngine()
	res := NewResource(e, 1)
	var order []int
	for i := 0; i < 6; i++ {
		i := i
		res.Acquire(func(release func()) {
			order = append(order, i)
			e.Schedule(1, release)
		})
	}
	e.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("resource grants out of order: %v", order)
		}
	}
}

func TestResourceTiming(t *testing.T) {
	// Capacity 2, four 10-unit jobs: completion at t=20.
	e := NewEngine()
	res := NewResource(e, 2)
	for i := 0; i < 4; i++ {
		res.Acquire(func(release func()) {
			e.Schedule(10, release)
		})
	}
	if end := e.Run(); end != 20 {
		t.Fatalf("makespan %v want 20", end)
	}
	// Utilisation: 2 units busy the whole time -> 1.0.
	if u := res.Utilization(); u < 0.99 || u > 1.01 {
		t.Fatalf("utilization %v", u)
	}
}

func TestUtilizationPartial(t *testing.T) {
	e := NewEngine()
	res := NewResource(e, 2)
	// One unit busy for 10 of 10 time units -> utilisation 0.5.
	res.Acquire(func(release func()) {
		e.Schedule(10, release)
	})
	e.Run()
	if u := res.Utilization(); u < 0.49 || u > 0.51 {
		t.Fatalf("utilization %v want 0.5", u)
	}
}

func TestDoubleReleasePanics(t *testing.T) {
	e := NewEngine()
	res := NewResource(e, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("double release did not panic")
		}
	}()
	res.Acquire(func(release func()) {
		release()
		release()
	})
	e.Run()
}

func TestZeroCapacityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero capacity did not panic")
		}
	}()
	NewResource(NewEngine(), 0)
}

// Property: with capacity c and n jobs of duration d, makespan is
// ceil(n/c)*d and the clock is always monotone.
func TestQuickResourceMakespan(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		c := 1 + r.Intn(5)
		n := 1 + r.Intn(30)
		d := 1 + float64(r.Intn(10))
		e := NewEngine()
		res := NewResource(e, c)
		last := -1.0
		for i := 0; i < n; i++ {
			res.Acquire(func(release func()) {
				if e.Now() < last {
					t.Fatal("clock went backwards")
				}
				last = e.Now()
				e.Schedule(d, release)
			})
		}
		end := e.Run()
		waves := (n + c - 1) / c
		return end == float64(waves)*d
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
