package data

import "fmt"

// EvictionPolicy decides which resident entries a full cache sacrifices and
// whether a missing entry is worth admitting at all. The cache core calls it
// under the cache's single-threaded discipline (the loader's dispatcher), so
// implementations need no locking.
//
// The admission half exists because staging is not free: a scan-heavy trace
// (every shard touched once per epoch, dataset >> cache) churns an
// admit-everything cache without ever producing a hit. A policy that admits
// only re-referenced keys keeps the cache for the shards that earn it. The
// same contract will back the serving feature cache.
type EvictionPolicy interface {
	// Name identifies the policy in stats and reports.
	Name() string
	// Admit reports whether a missing key should be inserted.
	Admit(key string, bytes int64) bool
	// Touch notifies a hit on a resident key.
	Touch(key string)
	// Added notifies that key became resident.
	Added(key string, bytes int64)
	// Removed notifies that key left the cache (evicted or dropped).
	Removed(key string)
	// Victim names the next entry to evict (ok=false when empty).
	Victim() (key string, ok bool)
}

// lruPolicy is least-recently-used with admit-everything: a doubly-linked
// recency list over resident keys. LRU's inclusion property is what makes
// cache hit-rate monotone non-decreasing in capacity on a fixed trace of
// equal-sized entries — the property test pins exactly that.
type lruPolicy struct {
	nodes map[string]*lruNode
	head  *lruNode // most recent
	tail  *lruNode // least recent
}

type lruNode struct {
	key        string
	prev, next *lruNode
}

// NewLRU returns an admit-everything least-recently-used policy.
func NewLRU() EvictionPolicy { return &lruPolicy{nodes: map[string]*lruNode{}} }

func (p *lruPolicy) Name() string             { return "lru" }
func (p *lruPolicy) Admit(string, int64) bool { return true }
func (p *lruPolicy) Touch(key string)         { p.moveFront(p.nodes[key]) }
func (p *lruPolicy) Added(key string, bytes int64) {
	n := &lruNode{key: key}
	p.nodes[key] = n
	p.pushFront(n)
}

func (p *lruPolicy) Removed(key string) {
	n := p.nodes[key]
	if n == nil {
		return
	}
	delete(p.nodes, key)
	p.unlink(n)
}

func (p *lruPolicy) Victim() (string, bool) {
	if p.tail == nil {
		return "", false
	}
	return p.tail.key, true
}

func (p *lruPolicy) pushFront(n *lruNode) {
	n.prev, n.next = nil, p.head
	if p.head != nil {
		p.head.prev = n
	}
	p.head = n
	if p.tail == nil {
		p.tail = n
	}
}

func (p *lruPolicy) unlink(n *lruNode) {
	if n.prev != nil {
		n.prev.next = n.next
	} else {
		p.head = n.next
	}
	if n.next != nil {
		n.next.prev = n.prev
	} else {
		p.tail = n.prev
	}
	n.prev, n.next = nil, nil
}

func (p *lruPolicy) moveFront(n *lruNode) {
	if n == nil || p.head == n {
		return
	}
	p.unlink(n)
	p.pushFront(n)
}

// doorkeeperLRU is LRU recency with TinyLFU-style admission: a key is
// admitted only the second time it asks (the doorkeeper remembers prior
// misses), so a one-pass scan over a dataset larger than the cache cannot
// flush entries that have proven reuse.
type doorkeeperLRU struct {
	lruPolicy
	seen    map[string]bool
	maxSeen int
}

// NewDoorkeeperLRU returns an LRU policy that admits a key only on its
// second admission request. maxSeen bounds the doorkeeper set (<= 0 means
// 4096); when full it resets, which at worst delays admissions.
func NewDoorkeeperLRU(maxSeen int) EvictionPolicy {
	if maxSeen <= 0 {
		maxSeen = 4096
	}
	return &doorkeeperLRU{
		lruPolicy: lruPolicy{nodes: map[string]*lruNode{}},
		seen:      map[string]bool{},
		maxSeen:   maxSeen,
	}
}

func (p *doorkeeperLRU) Name() string { return "doorkeeper-lru" }

func (p *doorkeeperLRU) Admit(key string, bytes int64) bool {
	if p.seen[key] {
		delete(p.seen, key)
		return true
	}
	if len(p.seen) >= p.maxSeen {
		p.seen = map[string]bool{}
	}
	p.seen[key] = true
	return false
}

// CacheStats counts one cache's traffic.
type CacheStats struct {
	Hits      int
	Misses    int
	Admitted  int
	Rejected  int // admission declined
	Evictions int
	BytesIn   int64 // logical bytes admitted
}

// HitRate returns Hits / (Hits + Misses), 0 when untouched.
func (s CacheStats) HitRate() float64 {
	if s.Hits+s.Misses == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Hits+s.Misses)
}

// Cache is a byte-budgeted key-value cache with a pluggable eviction policy.
// Values are opaque byte slices (shard payload copies here; feature vectors
// later); the accounted size is the caller-declared logical size, so a
// megabyte of real bytes can stand in for a terabyte of modelled ones.
//
// Not safe for concurrent use: the loader funnels every access through its
// single dispatcher, which is also what makes cache-state evolution
// deterministic.
type Cache struct {
	name    string
	cap     int64
	used    int64
	entries map[string]*cacheEntry
	policy  EvictionPolicy
	stats   CacheStats
}

type cacheEntry struct {
	val   []byte
	bytes int64
}

// NewCache returns a cache holding at most capacity logical bytes under the
// given policy (nil means NewLRU()).
func NewCache(name string, capacity int64, policy EvictionPolicy) *Cache {
	if policy == nil {
		policy = NewLRU()
	}
	return &Cache{name: name, cap: capacity, entries: map[string]*cacheEntry{}, policy: policy}
}

// Name returns the cache's tier name.
func (c *Cache) Name() string { return c.name }

// Capacity returns the byte budget.
func (c *Cache) Capacity() int64 { return c.cap }

// Used returns the resident logical bytes.
func (c *Cache) Used() int64 { return c.used }

// Len returns the resident entry count.
func (c *Cache) Len() int { return len(c.entries) }

// Stats returns a snapshot of the counters.
func (c *Cache) Stats() CacheStats { return c.stats }

// Policy returns the eviction policy's name.
func (c *Cache) Policy() string { return c.policy.Name() }

// Get returns the cached value and whether it was resident, updating hit /
// miss counters and recency.
func (c *Cache) Get(key string) ([]byte, bool) {
	e, ok := c.entries[key]
	if !ok {
		c.stats.Misses++
		return nil, false
	}
	c.stats.Hits++
	c.policy.Touch(key)
	return e.val, true
}

// Peek returns the cached value without touching counters or recency.
func (c *Cache) Peek(key string) ([]byte, bool) {
	e, ok := c.entries[key]
	if !ok {
		return nil, false
	}
	return e.val, true
}

// Contains reports residency without touching counters or recency.
func (c *Cache) Contains(key string) bool {
	_, ok := c.entries[key]
	return ok
}

// Put offers (key, val) at the given logical size. The policy may decline
// admission; otherwise victims are evicted until the entry fits. Entries
// larger than the whole cache are rejected. Returns whether the entry is
// resident afterwards.
func (c *Cache) Put(key string, val []byte, bytes int64) bool {
	if bytes > c.cap {
		c.stats.Rejected++
		return false
	}
	if _, ok := c.entries[key]; ok {
		// Refresh in place (same logical size class by construction).
		c.entries[key].val = val
		c.policy.Touch(key)
		return true
	}
	if !c.policy.Admit(key, bytes) {
		c.stats.Rejected++
		return false
	}
	for c.used+bytes > c.cap {
		victim, ok := c.policy.Victim()
		if !ok {
			panic(fmt.Sprintf("data: cache %s over budget with no victim", c.name))
		}
		c.remove(victim)
		c.stats.Evictions++
	}
	c.entries[key] = &cacheEntry{val: val, bytes: bytes}
	c.used += bytes
	c.policy.Added(key, bytes)
	c.stats.Admitted++
	c.stats.BytesIn += bytes
	return true
}

// Drop removes key if resident (used for detected corruption).
func (c *Cache) Drop(key string) {
	if _, ok := c.entries[key]; ok {
		c.remove(key)
	}
}

func (c *Cache) remove(key string) {
	e := c.entries[key]
	delete(c.entries, key)
	c.used -= e.bytes
	c.policy.Removed(key)
}
