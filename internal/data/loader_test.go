package data

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"math"
	"testing"

	"repro/internal/machine"
	"repro/internal/tensor"
)

// digestEpoch consumes one epoch and hashes every delivered batch byte —
// shapes and values — so two streams are equal iff the digests are.
func digestEpoch(t testing.TB, l *Loader, epoch int) string {
	t.Helper()
	h := sha256.New()
	l.Reset(epoch)
	for {
		x, y, ok := l.Next()
		if !ok {
			break
		}
		for _, ten := range []*tensor.Tensor{x, y} {
			var b [8]byte
			binary.LittleEndian.PutUint64(b[:], uint64(ten.Dim(0))<<32|uint64(ten.Dim(1)))
			h.Write(b[:])
			for _, v := range ten.Data {
				binary.LittleEndian.PutUint64(b[:], math.Float64bits(v))
				h.Write(b[:])
			}
		}
	}
	return hex.EncodeToString(h.Sum(nil))
}

func mustLoader(t testing.TB, man *Manifest, store *Store, cfg LoaderConfig) *Loader {
	t.Helper()
	l, err := NewLoader(man, store, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return l
}

// TestLoaderSeedDeterminism: same seed => byte-identical epoch batch
// streams, across fresh loaders and across prefetch/worker configurations
// (goroutine scheduling must not be observable).
func TestLoaderSeedDeterminism(t *testing.T) {
	man, store := mustBuild(t, 100, 16)
	configs := []LoaderConfig{
		{Batch: 8, Seed: 11},
		{Batch: 8, Seed: 11, Prefetch: 3, Workers: 2},
		{Batch: 8, Seed: 11, Prefetch: 5, Workers: 4, NVRAMBytes: man.TotalBytes()},
		{Batch: 8, Seed: 11, Prefetch: 2, Workers: 1,
			DRAMBytes: man.TotalBytes() / 2, NVRAMBytes: man.TotalBytes()},
	}
	var want [3]string
	for ci, cfg := range configs {
		l := mustLoader(t, man, store, cfg)
		for e := 0; e < 3; e++ {
			got := digestEpoch(t, l, e)
			if ci == 0 {
				want[e] = got
			} else if got != want[e] {
				t.Fatalf("config %d epoch %d stream differs from synchronous baseline", ci, e)
			}
		}
		l.Close()
	}
	// Different seed, different stream; different epochs, different streams.
	l := mustLoader(t, man, store, LoaderConfig{Batch: 8, Seed: 12})
	defer l.Close()
	if digestEpoch(t, l, 0) == want[0] {
		t.Fatal("seed 12 reproduced seed 11's stream")
	}
	if want[0] == want[1] {
		t.Fatal("epochs 0 and 1 delivered identical streams (no reshuffle)")
	}
}

// TestLoaderEpochReplay: resetting the same epoch replays the identical
// stream — the property checkpoint/resume at epoch boundaries relies on.
func TestLoaderEpochReplay(t *testing.T) {
	man, store := mustBuild(t, 64, 16)
	l := mustLoader(t, man, store, LoaderConfig{Batch: 8, Seed: 3, Prefetch: 2, NVRAMBytes: man.TotalBytes()})
	defer l.Close()
	first := digestEpoch(t, l, 5)
	if digestEpoch(t, l, 5) != first {
		t.Fatal("replaying epoch 5 produced a different stream")
	}
}

// TestLoaderEpochIsExactCover: one epoch delivers every dataset sample
// exactly once (as a multiset of (x,y) rows), for full and short shards.
func TestLoaderEpochIsExactCover(t *testing.T) {
	ds := testDataset(100)
	man, store, err := Build(ds, BuildOptions{ShardSamples: 16})
	if err != nil {
		t.Fatal(err)
	}
	l := mustLoader(t, man, store, LoaderConfig{Batch: 8, Seed: 9, Prefetch: 3, Workers: 2})
	defer l.Close()

	rowKey := func(x, y []float64) string {
		b := make([]byte, 0, 8*(len(x)+len(y)))
		for _, v := range append(append([]float64{}, x...), y...) {
			b = binary.LittleEndian.AppendUint64(b, math.Float64bits(v))
		}
		return string(b)
	}
	want := map[string]int{}
	for i := 0; i < ds.N(); i++ {
		want[rowKey(ds.X.Row(i).Data, ds.Y.Row(i).Data)]++
	}
	got := map[string]int{}
	samples := 0
	l.Reset(0)
	for {
		x, y, ok := l.Next()
		if !ok {
			break
		}
		for r := 0; r < x.Dim(0); r++ {
			got[rowKey(x.Row(r).Data, y.Row(r).Data)]++
			samples++
		}
	}
	if samples != ds.N() {
		t.Fatalf("epoch delivered %d samples, dataset has %d", samples, ds.N())
	}
	for k, n := range want {
		if got[k] != n {
			t.Fatalf("sample multiplicity %d in epoch, %d in dataset", got[k], n)
		}
	}
}

// clockFixture builds a 6-shard dataset where every shard costs exactly
// pfsSec to stage from PFS and computeSec to train on.
func clockFixture(t *testing.T, pfsSec, computePerBatch float64) (*Manifest, *Store, LoaderConfig) {
	t.Helper()
	man, store := mustBuild(t, 96, 16) // 6 equal shards, 2 batches each at Batch=8
	shardBytes := float64(man.Shards[0].Bytes)
	cfg := LoaderConfig{
		Batch: 8, Seed: 5,
		Tiers:           TierSpec{PFS: machine.MemTier{Name: "PFS", BandwidthBps: shardBytes / pfsSec}},
		ComputePerBatch: computePerBatch,
	}
	return man, store, cfg
}

// TestLoaderClockSynchronous: prefetch 0 serialises stage-in and compute,
// so epoch time is exactly S*(fetch+compute).
func TestLoaderClockSynchronous(t *testing.T) {
	man, store, cfg := clockFixture(t, 2.0, 0.25) // fetch 2.0, compute 0.5 per shard
	l := mustLoader(t, man, store, cfg)
	defer l.Close()
	digestEpoch(t, l, 0)
	st, ok := l.LastEpoch()
	if !ok {
		t.Fatal("no epoch stats")
	}
	if want := 6 * 2.5; math.Abs(st.Seconds-want) > 1e-9 {
		t.Fatalf("synchronous epoch %.6f s, want %.6f", st.Seconds, want)
	}
	if math.Abs(st.Seconds-(st.ComputeSeconds+st.StallSeconds)) > 1e-9 {
		t.Fatalf("clock identity broken: %.6f != %.6f + %.6f",
			st.Seconds, st.ComputeSeconds, st.StallSeconds)
	}
	if st.PFSReads != 6 || st.DRAMHits != 0 || st.NVRAMHits != 0 {
		t.Fatalf("tier counters %+v, want 6 PFS reads", st)
	}
}

// TestLoaderClockOverlap: with prefetch, epoch time collapses to
// max(compute, stage-in) plus one pipeline-fill bubble.
func TestLoaderClockOverlap(t *testing.T) {
	// Stage-bound: fetch 2.0/shard vs compute 0.5/shard.
	man, store, cfg := clockFixture(t, 2.0, 0.25)
	cfg.Prefetch, cfg.Workers = 2, 2
	l := mustLoader(t, man, store, cfg)
	digestEpoch(t, l, 0)
	st, _ := l.LastEpoch()
	l.Close()
	if want := 6*2.0 + 0.5; math.Abs(st.Seconds-want) > 1e-9 {
		t.Fatalf("stage-bound epoch %.6f s, want S*fetch+compute = %.6f", st.Seconds, want)
	}
	if st.StallFraction < 0.7 {
		t.Fatalf("stage-bound stall fraction %.3f, want > 0.7", st.StallFraction)
	}

	// Compute-bound: fetch 2.0/shard vs compute 4.0/shard.
	man, store, cfg = clockFixture(t, 2.0, 2.0)
	cfg.Prefetch, cfg.Workers = 2, 2
	l = mustLoader(t, man, store, cfg)
	digestEpoch(t, l, 0)
	st, _ = l.LastEpoch()
	l.Close()
	if want := 2.0 + 6*4.0; math.Abs(st.Seconds-want) > 1e-9 {
		t.Fatalf("compute-bound epoch %.6f s, want fetch+S*compute = %.6f", st.Seconds, want)
	}
	if want := 2.0 / 26.0; math.Abs(st.StallFraction-want) > 1e-9 {
		t.Fatalf("compute-bound stall fraction %.4f, want %.4f (fill bubble only)",
			st.StallFraction, want)
	}
}

// TestLoaderTierStaging: cold epoch reads PFS, staged epochs hit NVRAM then
// get promoted into DRAM, and residency reports the climb.
func TestLoaderTierStaging(t *testing.T) {
	man, store := mustBuild(t, 96, 16)
	node := machine.GPU2017(1).Node
	tiers, err := TiersFromNode(&node, 64)
	if err != nil {
		t.Fatal(err)
	}
	l := mustLoader(t, man, store, LoaderConfig{
		Batch: 8, Seed: 2, Prefetch: 2,
		DRAMBytes: man.TotalBytes(), NVRAMBytes: man.TotalBytes(),
		Tiers: tiers, ComputePerBatch: 0.01,
	})
	defer l.Close()

	digestEpoch(t, l, 0)
	cold, _ := l.LastEpoch()
	if cold.PFSReads != 6 || cold.NVRAMHits != 0 || cold.DRAMHits != 0 {
		t.Fatalf("cold epoch served %+v, want 6 PFS reads", cold)
	}
	for id := range man.Shards {
		if r := l.Residency(id); r != "nvram" {
			t.Fatalf("after cold epoch shard %d resident in %q, want nvram", id, r)
		}
	}

	digestEpoch(t, l, 1)
	warm, _ := l.LastEpoch()
	if warm.NVRAMHits != 6 || warm.PFSReads != 0 {
		t.Fatalf("warm epoch served %+v, want 6 NVRAM hits", warm)
	}
	for id := range man.Shards {
		if r := l.Residency(id); r != "dram" {
			t.Fatalf("after warm epoch shard %d resident in %q, want dram (promoted)", id, r)
		}
	}

	digestEpoch(t, l, 2)
	hot, _ := l.LastEpoch()
	if hot.DRAMHits != 6 || hot.NVRAMHits != 0 || hot.PFSReads != 0 {
		t.Fatalf("hot epoch served %+v, want 6 DRAM hits", hot)
	}
	if !(hot.Seconds < warm.Seconds && warm.Seconds < cold.Seconds) {
		t.Fatalf("epoch times not improving up the hierarchy: cold %.4f warm %.4f hot %.4f",
			cold.Seconds, warm.Seconds, hot.Seconds)
	}
}

// TestLoaderCapacityPressure: an NVRAM cache half the dataset still serves
// part of the epoch from NVRAM without breaking the stream.
func TestLoaderCapacityPressure(t *testing.T) {
	man, store := mustBuild(t, 96, 16)
	clean := mustLoader(t, man, store, LoaderConfig{Batch: 8, Seed: 4})
	defer clean.Close()
	l := mustLoader(t, man, store, LoaderConfig{
		Batch: 8, Seed: 4, NVRAMBytes: man.TotalBytes() / 2,
	})
	defer l.Close()
	for e := 0; e < 3; e++ {
		if digestEpoch(t, l, e) != digestEpoch(t, clean, e) {
			t.Fatalf("epoch %d stream changed under cache pressure", e)
		}
	}
	if nv := l.NVRAM(); nv.Used() > nv.Capacity() {
		t.Fatalf("cache over budget: %d > %d", nv.Used(), nv.Capacity())
	}
}

func TestLoaderConfigValidation(t *testing.T) {
	man, store := mustBuild(t, 32, 16)
	for name, cfg := range map[string]LoaderConfig{
		"no batch":     {},
		"neg prefetch": {Batch: 8, Prefetch: -1},
		"bad prob":     {Batch: 8, CorruptProb: 1.5},
	} {
		if _, err := NewLoader(man, store, cfg); err == nil {
			t.Fatalf("%s accepted", name)
		}
	}
}

func TestPartitionLockstepAndCover(t *testing.T) {
	ds := testDataset(96) // 6 shards of 16
	man, store, err := Build(ds, BuildOptions{ShardSamples: 16})
	if err != nil {
		t.Fatal(err)
	}
	p, err := NewPartition(man, store, 2, LoaderConfig{Batch: 8, Seed: 6, Prefetch: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	if p.Workers() != 2 || p.StepsPerEpoch() != 6 || p.Dropped() != 0 {
		t.Fatalf("workers %d steps %d dropped %d, want 2/6/0",
			p.Workers(), p.StepsPerEpoch(), p.Dropped())
	}
	// Per-rank shard sets are disjoint and together cover the dataset.
	seen := map[int]int{}
	for r := 0; r < 2; r++ {
		for _, id := range p.Loader(r).shards {
			seen[id]++
		}
	}
	if len(seen) != 6 {
		t.Fatalf("ranks cover %d shards, want 6", len(seen))
	}
	for id, n := range seen {
		if n != 1 {
			t.Fatalf("shard %d assigned %d times", id, n)
		}
	}
	// Both ranks deliver exactly StepsPerEpoch batches.
	for r := 0; r < 2; r++ {
		it := p.Iterator(r)
		it.Reset(0)
		steps := 0
		for {
			_, _, ok := it.Next()
			if !ok {
				break
			}
			steps++
		}
		if steps != p.StepsPerEpoch() {
			t.Fatalf("rank %d delivered %d steps, want %d", r, steps, p.StepsPerEpoch())
		}
	}
}

func TestPartitionDropsRaggedTail(t *testing.T) {
	man, store := mustBuild(t, 100, 16) // 6 full shards + 1 short
	p, err := NewPartition(man, store, 3, LoaderConfig{Batch: 8, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	if p.Dropped() != 1 {
		t.Fatalf("dropped %d shards, want 1 (the short tail)", p.Dropped())
	}
	if _, err := NewPartition(man, store, 9, LoaderConfig{Batch: 8}); err == nil {
		t.Fatal("9 ranks over 7 shards accepted")
	}
}
