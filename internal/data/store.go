package data

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"

	"repro/internal/biodata"
)

// Store holds the authoritative encoded payload of every shard — the
// parallel-file-system copy. Staged copies in the tier caches are always
// derived from (and re-derivable from) this one, which is why a corrupted
// staged shard can simply be dropped and re-staged.
//
// The payload layout is fixed-width: per sample, XDim float64s then YDim
// float64s, little-endian bit patterns. Row access is therefore offset
// arithmetic on the blob, no per-shard decode step.
type Store struct {
	man   *Manifest
	blobs [][]byte
}

// Manifest returns the store's manifest.
func (s *Store) Manifest() *Manifest { return s.man }

// Blob returns the authoritative payload of shard id. The slice is shared —
// callers that stage it into a mutable tier must copy it first.
func (s *Store) Blob(id int) ([]byte, error) {
	if id < 0 || id >= len(s.blobs) {
		return nil, fmt.Errorf("data: shard %d out of range [0,%d)", id, len(s.blobs))
	}
	return s.blobs[id], nil
}

// VerifyShard checks blob against shard id's manifest checksum.
func (s *Store) VerifyShard(id int, blob []byte) bool {
	return crc32.ChecksumIEEE(blob) == s.man.Shards[id].Checksum
}

// encodeShard packs samples [lo, hi) of ds into the fixed-width payload.
func encodeShard(ds *biodata.Dataset, lo, hi int) []byte {
	xd, yd := ds.Dim(), ds.OutDim()
	out := make([]byte, 0, (hi-lo)*(xd+yd)*8)
	for i := lo; i < hi; i++ {
		for _, v := range ds.X.Row(i).Data {
			out = binary.LittleEndian.AppendUint64(out, math.Float64bits(v))
		}
		for _, v := range ds.Y.Row(i).Data {
			out = binary.LittleEndian.AppendUint64(out, math.Float64bits(v))
		}
	}
	return out
}

// decodeRow copies sample `local` of a shard payload into x and y, which
// must be XDim and YDim long.
func decodeRow(blob []byte, local, xd, yd int, x, y []float64) {
	off := local * (xd + yd) * 8
	for j := range x {
		x[j] = math.Float64frombits(binary.LittleEndian.Uint64(blob[off:]))
		off += 8
	}
	for j := range y {
		y[j] = math.Float64frombits(binary.LittleEndian.Uint64(blob[off:]))
		off += 8
	}
}
