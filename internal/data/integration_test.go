package data_test

import (
	"testing"

	"repro/internal/biodata"
	"repro/internal/comm"
	"repro/internal/data"
	"repro/internal/leakcheck"
	"repro/internal/nn"
	"repro/internal/parallel"
	"repro/internal/rng"
)

func buildPlane(t testing.TB, samples, shardSamples int) (*biodata.Dataset, *data.Manifest, *data.Store) {
	t.Helper()
	cfg := biodata.TumorConfig{Samples: samples, Genes: 12, Classes: 3,
		Informative: 6, Separation: 1.4, Noise: 1, PathwayBlocks: 2}
	ds := biodata.Tumor(cfg, rng.New(7))
	man, store, err := data.Build(ds, data.BuildOptions{ShardSamples: shardSamples})
	if err != nil {
		t.Fatal(err)
	}
	return ds, man, store
}

func trainNet(seed uint64) *nn.Net {
	r := rng.New(seed)
	return nn.NewNet(nn.NewDense(12, 16, r), nn.NewActivation(nn.ReLU), nn.NewDense(16, 3, r))
}

// TestTrainOnLoader trains through TrainConfig.Data and checks the model
// actually learns from the streamed batches.
func TestTrainOnLoader(t *testing.T) {
	ds, man, store := buildPlane(t, 384, 32)
	l, err := data.NewLoader(man, store, data.LoaderConfig{Batch: 16, Seed: 3, Prefetch: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	net := trainNet(1)
	res, err := nn.Train(net, nil, nil, nn.TrainConfig{
		Loss: nn.SoftmaxCELoss{}, Optimizer: nn.NewAdam(0.01), Epochs: 8, Data: l,
	})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := res.Steps, 8*l.BatchesPerEpoch(); got != want {
		t.Fatalf("took %d optimizer steps, want %d", got, want)
	}
	first, last := res.EpochLoss[0], res.FinalLoss
	if !(last < 0.7*first) {
		t.Fatalf("streamed training did not learn: loss %.4f -> %.4f", first, last)
	}
	acc := nn.EvaluateClassifier(net, ds.X, ds.Labels)
	if acc < 0.6 {
		t.Fatalf("train accuracy %.3f after streamed training", acc)
	}
}

func TestTrainDataPathValidation(t *testing.T) {
	_, man, store := buildPlane(t, 64, 16)
	l, err := data.NewLoader(man, store, data.LoaderConfig{Batch: 8, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	ds := biodata.Tumor(biodata.TumorConfig{Samples: 8, Genes: 12, Classes: 3,
		Informative: 4, Separation: 1, Noise: 1}, rng.New(1))
	base := nn.TrainConfig{Loss: nn.SoftmaxCELoss{}, Optimizer: nn.NewSGD(0.1), Epochs: 1, Data: l}

	cfg := base
	if _, err := nn.Train(trainNet(1), ds.X, ds.Y, cfg); err == nil {
		t.Fatal("Data plus in-memory tensors accepted")
	}
	cfg = base
	cfg.Shuffle = true
	cfg.RNG = rng.New(1)
	if _, err := nn.Train(trainNet(1), nil, nil, cfg); err == nil {
		t.Fatal("Data plus Shuffle accepted")
	}
}

// TestTrainOnLoaderResumeBitwise checkpoints mid-run and resumes into a
// fresh net and a fresh loader: because the loader's epochs are pure
// functions of (seed, epoch), the resumed run must match the uninterrupted
// one bit for bit.
func TestTrainOnLoaderResumeBitwise(t *testing.T) {
	_, man, store := buildPlane(t, 192, 32)
	mkLoader := func() *data.Loader {
		l, err := data.NewLoader(man, store, data.LoaderConfig{Batch: 16, Seed: 17, Prefetch: 2})
		if err != nil {
			t.Fatal(err)
		}
		return l
	}
	mkCfg := func(l *data.Loader) nn.TrainConfig {
		return nn.TrainConfig{
			Loss: nn.SoftmaxCELoss{}, Optimizer: nn.NewAdam(0.01), Epochs: 6, Data: l,
		}
	}

	refLoader := mkLoader()
	defer refLoader.Close()
	refNet := trainNet(9)
	blobs := map[int][]byte{}
	cfg := mkCfg(refLoader)
	cfg.CheckpointEvery = 2
	cfg.Checkpoint = func(epoch int, state []byte) error {
		blobs[epoch] = append([]byte(nil), state...)
		return nil
	}
	refRes, err := nn.Train(refNet, nil, nil, cfg)
	if err != nil {
		t.Fatal(err)
	}

	resLoader := mkLoader()
	defer resLoader.Close()
	resNet := trainNet(9)
	rcfg := mkCfg(resLoader)
	rcfg.Resume = blobs[4]
	resRes, err := nn.Train(resNet, nil, nil, rcfg)
	if err != nil {
		t.Fatal(err)
	}
	if resRes.FinalLoss != refRes.FinalLoss {
		t.Fatalf("resumed final loss %v != reference %v", resRes.FinalLoss, refRes.FinalLoss)
	}
	refP, resP := refNet.Params(), resNet.Params()
	for i := range refP {
		for j := range refP[i].Data {
			if refP[i].Data[j] != resP[i].Data[j] {
				t.Fatalf("param %d[%d] diverged after resume: %v != %v",
					i, j, resP[i].Data[j], refP[i].Data[j])
			}
		}
	}
}

// TestDataParallelOnPartition trains the data-parallel trainer from a shard
// partition: replicas stay in sync, the loss falls, and no goroutine leaks.
func TestDataParallelOnPartition(t *testing.T) {
	defer leakcheck.Check(t)()
	_, man, store := buildPlane(t, 384, 32) // 12 shards over 4 ranks
	p, err := data.NewPartition(man, store, 4, data.LoaderConfig{Batch: 16, Seed: 23, Prefetch: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	net := trainNet(5)
	res, err := parallel.TrainDataParallel(net, nil, nil, parallel.DataParallelConfig{
		Replicas: 4,
		Algo:     comm.ARTree,
		Loss:     nn.SoftmaxCELoss{},
		NewOptimizer: func() nn.Optimizer {
			return nn.NewSGD(0.05)
		},
		Epochs: 4,
		Data:   p,
	})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := res.Steps, 4*p.StepsPerEpoch(); got != want {
		t.Fatalf("ran %d steps, want %d", got, want)
	}
	if len(res.EpochLoss) != 4 {
		t.Fatalf("epoch losses %v, want 4 entries", res.EpochLoss)
	}
	if !(res.EpochLoss[3] < res.EpochLoss[0]) {
		t.Fatalf("sharded data-parallel training did not learn: %v", res.EpochLoss)
	}
	// Every rank consumed its own shard subset through its own caches.
	for r := 0; r < 4; r++ {
		if n := p.Loader(r).NumShards(); n != 3 {
			t.Fatalf("rank %d owns %d shards, want 3", r, n)
		}
	}
}

func TestDataParallelPartitionValidation(t *testing.T) {
	_, man, store := buildPlane(t, 384, 32)
	p, err := data.NewPartition(man, store, 3, data.LoaderConfig{Batch: 16, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	cfg := parallel.DataParallelConfig{
		Replicas: 4, Algo: comm.ARTree, Loss: nn.SoftmaxCELoss{},
		NewOptimizer: func() nn.Optimizer { return nn.NewSGD(0.1) },
		Data:         p,
	}
	if _, err := parallel.TrainDataParallel(trainNet(1), nil, nil, cfg); err == nil {
		t.Fatal("rank-count mismatch accepted")
	}
}
