package data

import (
	"bytes"
	"hash/crc32"
	"reflect"
	"testing"

	"repro/internal/biodata"
	"repro/internal/rng"
)

// testDataset builds a small deterministic tumor-expression dataset.
func testDataset(samples int) *biodata.Dataset {
	cfg := biodata.TumorConfig{Samples: samples, Genes: 12, Classes: 3,
		Informative: 6, Separation: 1.4, Noise: 1, PathwayBlocks: 2}
	return biodata.Tumor(cfg, rng.New(7))
}

func mustBuild(t testing.TB, samples, shardSamples int) (*Manifest, *Store) {
	t.Helper()
	man, store, err := Build(testDataset(samples), BuildOptions{ShardSamples: shardSamples})
	if err != nil {
		t.Fatal(err)
	}
	return man, store
}

func TestBuildManifestTilesDataset(t *testing.T) {
	man, store := mustBuild(t, 100, 16)
	if man.NumShards() != 7 {
		t.Fatalf("100 samples / 16 per shard: want 7 shards, got %d", man.NumShards())
	}
	// The shard table must tile [0, Samples) exactly: dense IDs, consecutive
	// disjoint ranges, unique names, checksums matching the stored payloads.
	names := map[string]bool{}
	next := 0
	for i, s := range man.Shards {
		if s.ID != i {
			t.Fatalf("shard %d has ID %d", i, s.ID)
		}
		if s.Lo != next {
			t.Fatalf("shard %d starts at %d, want %d (tiling broken)", i, s.Lo, next)
		}
		if s.Hi <= s.Lo {
			t.Fatalf("shard %d empty: [%d,%d)", i, s.Lo, s.Hi)
		}
		if names[s.Name] {
			t.Fatalf("duplicate shard name %q", s.Name)
		}
		names[s.Name] = true
		blob, err := store.Blob(s.ID)
		if err != nil {
			t.Fatal(err)
		}
		if crc32.ChecksumIEEE(blob) != s.Checksum {
			t.Fatalf("shard %d checksum does not match its payload", i)
		}
		if !store.VerifyShard(s.ID, blob) {
			t.Fatalf("VerifyShard rejects shard %d's own payload", i)
		}
		if s.Bytes != int64(s.Samples())*man.SampleBytes {
			t.Fatalf("shard %d logical size %d, want %d", i, s.Bytes, int64(s.Samples())*man.SampleBytes)
		}
		next = s.Hi
	}
	if next != man.Samples {
		t.Fatalf("shards cover [0,%d), dataset has %d samples", next, man.Samples)
	}
	if last := man.Shards[6]; last.Samples() != 4 {
		t.Fatalf("trailing shard holds %d samples, want 4", last.Samples())
	}
	if man.TotalBytes() != int64(man.Samples)*man.SampleBytes {
		t.Fatalf("TotalBytes %d, want %d", man.TotalBytes(), int64(man.Samples)*man.SampleBytes)
	}
}

func TestBuildLogicalScaling(t *testing.T) {
	man, _, err := Build(testDataset(64), BuildOptions{ShardSamples: 16, SampleBytes: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	if man.TotalBytes() != 64<<20 {
		t.Fatalf("logical total %d, want %d", man.TotalBytes(), int64(64<<20))
	}
}

func TestBuildRejectsBadOptions(t *testing.T) {
	if _, _, err := Build(testDataset(10), BuildOptions{}); err == nil {
		t.Fatal("ShardSamples=0 accepted")
	}
}

func TestManifestRoundTrip(t *testing.T) {
	man, _ := mustBuild(t, 100, 16)
	enc, err := man.Encode()
	if err != nil {
		t.Fatal(err)
	}
	dec, err := DecodeManifest(enc)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(man, dec) {
		t.Fatalf("round trip changed the manifest:\n got %+v\nwant %+v", dec, man)
	}
	re, err := dec.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(enc, re) {
		t.Fatal("re-encode is not byte-identical (framing not canonical)")
	}
}

func TestDecodeManifestRejectsEveryTruncation(t *testing.T) {
	man, _ := mustBuild(t, 48, 16)
	enc, err := man.Encode()
	if err != nil {
		t.Fatal(err)
	}
	for n := 0; n < len(enc); n++ {
		if _, err := DecodeManifest(enc[:n]); err == nil {
			t.Fatalf("truncation to %d/%d bytes decoded without error", n, len(enc))
		}
	}
}

func TestDecodeManifestRejectsEveryBitFlip(t *testing.T) {
	man, _ := mustBuild(t, 48, 16)
	enc, err := man.Encode()
	if err != nil {
		t.Fatal(err)
	}
	for bit := 0; bit < len(enc)*8; bit++ {
		mut := append([]byte(nil), enc...)
		mut[bit>>3] ^= 1 << (bit & 7)
		if _, err := DecodeManifest(mut); err == nil {
			t.Fatalf("bit flip at %d decoded without error", bit)
		}
	}
}

func TestDecodeManifestRejectsTrailingGarbage(t *testing.T) {
	man, _ := mustBuild(t, 48, 16)
	enc, _ := man.Encode()
	if _, err := DecodeManifest(append(enc, 0)); err == nil {
		t.Fatal("trailing byte decoded without error")
	}
}

// FuzzShardManifest asserts decode never panics on arbitrary bytes and that
// every successful decode re-encodes canonically to the identical frame.
func FuzzShardManifest(f *testing.F) {
	for _, samples := range []int{16, 100} {
		man, _, err := Build(testDataset(samples), BuildOptions{ShardSamples: 16})
		if err != nil {
			f.Fatal(err)
		}
		enc, err := man.Encode()
		if err != nil {
			f.Fatal(err)
		}
		f.Add(enc)
		f.Add(enc[:len(enc)/2])
		mut := append([]byte(nil), enc...)
		mut[len(mut)/3] ^= 0x40
		f.Add(mut)
	}
	f.Add([]byte(manifestMagic))
	f.Fuzz(func(t *testing.T, b []byte) {
		m, err := DecodeManifest(b)
		if err != nil {
			return
		}
		re, err := m.Encode()
		if err != nil {
			t.Fatalf("decoded manifest fails to encode: %v", err)
		}
		if !bytes.Equal(re, b) {
			t.Fatalf("decode/encode not canonical:\n in  %x\n out %x", b, re)
		}
	})
}
