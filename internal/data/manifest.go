// Package data is the sharded streaming data plane: it connects the biodata
// generators and the tiered-storage model (PFS / NVRAM / DRAM) to the real
// trainers. A dataset is cut into named, checksummed shards described by a
// Manifest; a Store holds the authoritative (PFS) copy of every shard's
// encoded bytes; a TierCache stages copies up the hierarchy under a byte
// budget with pluggable eviction; and a Loader streams deterministic batches
// to nn.Train / parallel.TrainDataParallel while charging every byte moved
// to a virtual clock — so epoch time, stage-in time, and stall fraction are
// measured end to end rather than derived analytically (experiment E16
// re-derives E7's NVRAM-staging crossover this way).
//
// Everything is deterministic in the configured seed: the shard order, the
// within-shard sample order, the cache-state evolution, and the virtual
// timeline are all decided serially by the consumer-side dispatcher, so two
// runs with the same seed produce byte-identical batch streams regardless of
// how the prefetch worker goroutines are scheduled.
package data

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"

	"repro/internal/biodata"
)

// Shard is one named slice of a dataset: Samples consecutive samples of the
// source (after the manifest's deterministic assignment), with the logical
// staged size and the checksum of the encoded payload.
type Shard struct {
	// ID is the shard's index in the manifest (dense, 0-based).
	ID int
	// Name is the shard's stable name ("<dataset>-<id>").
	Name string
	// Lo and Hi bound the source sample range [Lo, Hi).
	Lo, Hi int
	// Bytes is the shard's logical size in bytes: what staging it costs on
	// the virtual clock. Defaults to the real encoded payload size; E16
	// scales it up to model multi-terabyte datasets with small real data.
	Bytes int64
	// Checksum is the CRC-32 (IEEE) of the shard's encoded payload. Every
	// read of a staged copy re-verifies it, which is what turns silent
	// corruption into a detected re-stage instead of poisoned training data.
	Checksum uint32
}

// Samples returns the shard's sample count.
func (s Shard) Samples() int { return s.Hi - s.Lo }

// Manifest describes a sharded dataset: its dimensions, the shard size, and
// the shard table. It is a static artifact — per-tier residency is runtime
// state owned by the loader's TierCache, queryable via Loader.Residency.
type Manifest struct {
	// Dataset names the source dataset.
	Dataset string
	// Samples is the total sample count across all shards.
	Samples int
	// XDim and YDim are the feature and target widths.
	XDim, YDim int
	// ShardSamples is the nominal samples per shard (the last shard may be
	// short when Samples is not a multiple).
	ShardSamples int
	// SampleBytes is the logical bytes one sample occupies when staged.
	SampleBytes int64
	// Shards is the shard table in ID order.
	Shards []Shard
}

// NumShards returns the shard count.
func (m *Manifest) NumShards() int { return len(m.Shards) }

// TotalBytes returns the dataset's total logical size.
func (m *Manifest) TotalBytes() int64 {
	var n int64
	for _, s := range m.Shards {
		n += s.Bytes
	}
	return n
}

// String summarises the manifest.
func (m *Manifest) String() string {
	return fmt.Sprintf("%s: %d samples x (%d+%d) in %d shards (%d samples/shard, %.1f MB logical)",
		m.Dataset, m.Samples, m.XDim, m.YDim, len(m.Shards), m.ShardSamples,
		float64(m.TotalBytes())/1e6)
}

// BuildOptions tunes manifest construction.
type BuildOptions struct {
	// ShardSamples is the samples per shard (required, > 0).
	ShardSamples int
	// SampleBytes overrides the logical staged size of one sample; 0 means
	// the real encoded size ((XDim+YDim) * 8 bytes).
	SampleBytes int64
}

// Build cuts a biodata dataset into a manifest + store pair: the manifest
// names and checksums the shards, the store holds the authoritative encoded
// payload of each (the PFS copy the loader stages from).
func Build(ds *biodata.Dataset, opts BuildOptions) (*Manifest, *Store, error) {
	if opts.ShardSamples <= 0 {
		return nil, nil, fmt.Errorf("data: ShardSamples must be > 0, got %d", opts.ShardSamples)
	}
	n := ds.N()
	if n == 0 {
		return nil, nil, fmt.Errorf("data: dataset %q is empty", ds.Name)
	}
	xd, yd := ds.Dim(), ds.OutDim()
	sampleBytes := opts.SampleBytes
	if sampleBytes <= 0 {
		sampleBytes = int64(xd+yd) * 8
	}
	m := &Manifest{
		Dataset:      ds.Name,
		Samples:      n,
		XDim:         xd,
		YDim:         yd,
		ShardSamples: opts.ShardSamples,
		SampleBytes:  sampleBytes,
	}
	store := &Store{man: m}
	for lo := 0; lo < n; lo += opts.ShardSamples {
		hi := lo + opts.ShardSamples
		if hi > n {
			hi = n
		}
		blob := encodeShard(ds, lo, hi)
		sh := Shard{
			ID:       len(m.Shards),
			Name:     fmt.Sprintf("%s-%04d", ds.Name, len(m.Shards)),
			Lo:       lo,
			Hi:       hi,
			Bytes:    int64(hi-lo) * sampleBytes,
			Checksum: crc32.ChecksumIEEE(blob),
		}
		m.Shards = append(m.Shards, sh)
		store.blobs = append(store.blobs, blob)
	}
	return m, store, nil
}

// ---- wire format ----------------------------------------------------------

// The manifest's frame: magic, a little-endian u32 body length, the body,
// and the CRC-32 (IEEE) of the body. Decode rejects truncation, trailing
// garbage, bad magic, and checksum mismatches with errors — never a panic —
// and every successful decode re-encodes to the identical bytes (canonical
// framing, pinned by FuzzShardManifest).
const manifestMagic = "CNDLMAN1"

// Decode errors. Callers that re-stage on corruption match ErrCorrupt.
var (
	ErrTruncated = errors.New("data: manifest truncated")
	ErrCorrupt   = errors.New("data: manifest corrupted")
)

// Encode serialises the manifest into its framed wire format.
func (m *Manifest) Encode() ([]byte, error) {
	if len(m.Dataset) > 0xffff {
		return nil, fmt.Errorf("data: dataset name %d bytes, max %d", len(m.Dataset), 0xffff)
	}
	var body []byte
	body = appendString(body, m.Dataset)
	body = binary.LittleEndian.AppendUint32(body, uint32(m.Samples))
	body = binary.LittleEndian.AppendUint32(body, uint32(m.XDim))
	body = binary.LittleEndian.AppendUint32(body, uint32(m.YDim))
	body = binary.LittleEndian.AppendUint32(body, uint32(m.ShardSamples))
	body = binary.LittleEndian.AppendUint64(body, uint64(m.SampleBytes))
	body = binary.LittleEndian.AppendUint32(body, uint32(len(m.Shards)))
	for _, s := range m.Shards {
		if len(s.Name) > 0xffff {
			return nil, fmt.Errorf("data: shard name %d bytes, max %d", len(s.Name), 0xffff)
		}
		body = binary.LittleEndian.AppendUint32(body, uint32(s.ID))
		body = appendString(body, s.Name)
		body = binary.LittleEndian.AppendUint32(body, uint32(s.Lo))
		body = binary.LittleEndian.AppendUint32(body, uint32(s.Hi))
		body = binary.LittleEndian.AppendUint64(body, uint64(s.Bytes))
		body = binary.LittleEndian.AppendUint32(body, s.Checksum)
	}
	out := make([]byte, 0, len(manifestMagic)+4+len(body)+4)
	out = append(out, manifestMagic...)
	out = binary.LittleEndian.AppendUint32(out, uint32(len(body)))
	out = append(out, body...)
	return binary.LittleEndian.AppendUint32(out, crc32.ChecksumIEEE(body)), nil
}

// DecodeManifest parses a framed manifest blob.
func DecodeManifest(b []byte) (*Manifest, error) {
	head := len(manifestMagic) + 4
	if len(b) < head {
		return nil, fmt.Errorf("%w: %d bytes, need at least %d", ErrTruncated, len(b), head)
	}
	if string(b[:len(manifestMagic)]) != manifestMagic {
		return nil, fmt.Errorf("%w: bad magic", ErrCorrupt)
	}
	bodyLen := int(binary.LittleEndian.Uint32(b[len(manifestMagic):head]))
	if len(b) != head+bodyLen+4 {
		if len(b) < head+bodyLen+4 {
			return nil, fmt.Errorf("%w: frame says %d body bytes, %d remain",
				ErrTruncated, bodyLen, len(b)-head)
		}
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrCorrupt, len(b)-head-bodyLen-4)
	}
	body := b[head : head+bodyLen]
	want := binary.LittleEndian.Uint32(b[head+bodyLen:])
	if got := crc32.ChecksumIEEE(body); got != want {
		return nil, fmt.Errorf("%w: body crc %08x, frame says %08x", ErrCorrupt, got, want)
	}
	cur := reader{b: body}
	m := &Manifest{}
	m.Dataset = cur.str()
	m.Samples = int(cur.u32())
	m.XDim = int(cur.u32())
	m.YDim = int(cur.u32())
	m.ShardSamples = int(cur.u32())
	m.SampleBytes = int64(cur.u64())
	nShards := int(cur.u32())
	// A shard entry is at least 26 bytes; reject counts the body cannot hold
	// before allocating (a fuzzer will otherwise ask for gigabytes).
	if cur.err == nil && nShards > len(cur.b)/26+1 {
		return nil, fmt.Errorf("%w: %d shards cannot fit in %d bytes", ErrCorrupt, nShards, len(cur.b))
	}
	for i := 0; i < nShards && cur.err == nil; i++ {
		s := Shard{}
		s.ID = int(cur.u32())
		s.Name = cur.str()
		s.Lo = int(cur.u32())
		s.Hi = int(cur.u32())
		s.Bytes = int64(cur.u64())
		s.Checksum = cur.u32()
		m.Shards = append(m.Shards, s)
	}
	if cur.err != nil {
		return nil, cur.err
	}
	if len(cur.b) != 0 {
		return nil, fmt.Errorf("%w: %d undecoded body bytes", ErrCorrupt, len(cur.b))
	}
	return m, nil
}

func appendString(b []byte, s string) []byte {
	b = binary.LittleEndian.AppendUint16(b, uint16(len(s)))
	return append(b, s...)
}

// reader is a bounds-checked cursor over the manifest body; the first
// overrun latches err and every later read returns zero.
type reader struct {
	b   []byte
	err error
}

func (r *reader) take(n int) []byte {
	if r.err != nil {
		return nil
	}
	if len(r.b) < n {
		r.err = fmt.Errorf("%w: need %d body bytes, have %d", ErrTruncated, n, len(r.b))
		return nil
	}
	out := r.b[:n]
	r.b = r.b[n:]
	return out
}

func (r *reader) u16() uint16 {
	if b := r.take(2); b != nil {
		return binary.LittleEndian.Uint16(b)
	}
	return 0
}

func (r *reader) u32() uint32 {
	if b := r.take(4); b != nil {
		return binary.LittleEndian.Uint32(b)
	}
	return 0
}

func (r *reader) u64() uint64 {
	if b := r.take(8); b != nil {
		return binary.LittleEndian.Uint64(b)
	}
	return 0
}

func (r *reader) str() string {
	n := int(r.u16())
	if b := r.take(n); b != nil {
		return string(b)
	}
	return ""
}
