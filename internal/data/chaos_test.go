package data

import (
	"testing"

	"repro/internal/fault"
	"repro/internal/leakcheck"
)

// TestChaosWorkerKills drives the loader while a fault plan kills decode
// workers mid-epoch — including every worker — and asserts the batch stream
// is byte-identical to the kill-free run, with no goroutine left behind.
func TestChaosWorkerKills(t *testing.T) {
	defer leakcheck.Check(t)()
	man, store := mustBuild(t, 100, 16)

	clean := mustLoader(t, man, store, LoaderConfig{Batch: 8, Seed: 21, Prefetch: 3, Workers: 3})
	var want [2]string
	for e := range want {
		want[e] = digestEpoch(t, clean, e)
	}
	clean.Close()

	cases := map[string]*fault.Plan{
		"one worker":   fault.NewPlan().Kill(1, 3),
		"two workers":  fault.NewPlan().Kill(0, 2).Kill(2, 5),
		"all workers":  fault.NewPlan().Kill(0, 1).Kill(1, 4).Kill(2, 6),
		"first fetch":  fault.NewPlan().Kill(0, 0),
		"second epoch": fault.NewPlan().Kill(1, 9),
	}
	for name, plan := range cases {
		l := mustLoader(t, man, store, LoaderConfig{
			Batch: 8, Seed: 21, Prefetch: 3, Workers: 3, Plan: plan,
		})
		for e := range want {
			if digestEpoch(t, l, e) != want[e] {
				t.Fatalf("%s: epoch %d stream diverged under worker kills", name, e)
			}
		}
		l.Close()
	}
}

// TestChaosSilentCorruption flips a bit in staged shard copies and asserts
// the checksum catches it: the shard is re-staged from the tier below and
// the delivered batches never change.
func TestChaosSilentCorruption(t *testing.T) {
	defer leakcheck.Check(t)()
	man, store := mustBuild(t, 96, 16)

	clean := mustLoader(t, man, store, LoaderConfig{Batch: 8, Seed: 31})
	defer clean.Close()
	l := mustLoader(t, man, store, LoaderConfig{
		Batch: 8, Seed: 31, Prefetch: 2, Workers: 2, NVRAMBytes: man.TotalBytes(),
	})
	defer l.Close()

	// Warm the NVRAM tier, then corrupt three staged copies in place.
	if digestEpoch(t, l, 0) != digestEpoch(t, clean, 0) {
		t.Fatal("warm-up epoch diverged")
	}
	for _, id := range []int{0, 2, 5} {
		if !l.InjectCorruption(id) {
			t.Fatalf("shard %d not staged, cannot corrupt", id)
		}
	}
	if digestEpoch(t, l, 1) != digestEpoch(t, clean, 1) {
		t.Fatal("corrupted staged copies leaked into the batch stream")
	}
	st, _ := l.LastEpoch()
	if st.Restaged != 3 {
		t.Fatalf("detected %d corrupted copies, want 3", st.Restaged)
	}
	if st.PFSReads != 3 || st.NVRAMHits != 3 {
		t.Fatalf("served %+v, want 3 re-stages from PFS and 3 clean NVRAM hits", st)
	}
	// The re-staged copies are clean again.
	digestEpoch(t, l, 2)
	st, _ = l.LastEpoch()
	if st.Restaged != 0 || st.NVRAMHits != 6 {
		t.Fatalf("after re-stage: %+v, want 6 clean NVRAM hits", st)
	}
}

// TestChaosSeededCorruptionDeterministic runs the probabilistic gray-failure
// model: staged copies are corrupted at a seeded rate, every corruption is
// caught, and two identical runs agree on both the stream and the fault
// counters.
func TestChaosSeededCorruptionDeterministic(t *testing.T) {
	defer leakcheck.Check(t)()
	man, store := mustBuild(t, 96, 16)

	run := func() ([3]string, int, int) {
		l := mustLoader(t, man, store, LoaderConfig{
			Batch: 8, Seed: 41, Prefetch: 3, Workers: 2,
			NVRAMBytes: man.TotalBytes(), CorruptProb: 0.5,
		})
		defer l.Close()
		var digests [3]string
		corrupted, restaged := 0, 0
		for e := range digests {
			digests[e] = digestEpoch(t, l, e)
			st, _ := l.LastEpoch()
			corrupted += st.Corrupted
			restaged += st.Restaged
		}
		return digests, corrupted, restaged
	}
	d1, c1, r1 := run()
	d2, c2, r2 := run()
	if d1 != d2 || c1 != c2 || r1 != r2 {
		t.Fatalf("seeded corruption runs disagree: %d/%d vs %d/%d corruptions/re-stages",
			c1, r1, c2, r2)
	}
	if c1 == 0 || r1 == 0 {
		t.Fatalf("CorruptProb=0.5 over 3 epochs produced %d corruptions, %d re-stages", c1, r1)
	}

	clean := mustLoader(t, man, store, LoaderConfig{Batch: 8, Seed: 41})
	defer clean.Close()
	for e := range d1 {
		if digestEpoch(t, clean, e) != d1[e] {
			t.Fatalf("epoch %d: corruption changed the delivered batches", e)
		}
	}
}
