package data

import (
	"fmt"
	"testing"

	"repro/internal/rng"
)

func TestCacheLRUEvictsLeastRecent(t *testing.T) {
	c := NewCache("t", 3, NewLRU())
	for _, k := range []string{"a", "b", "c"} {
		if !c.Put(k, []byte(k), 1) {
			t.Fatalf("put %q rejected", k)
		}
	}
	if _, ok := c.Get("a"); !ok { // a becomes most recent; b is now LRU
		t.Fatal("a missing")
	}
	c.Put("d", []byte("d"), 1)
	if c.Contains("b") {
		t.Fatal("b should have been the LRU victim")
	}
	for _, k := range []string{"a", "c", "d"} {
		if !c.Contains(k) {
			t.Fatalf("%q missing after eviction", k)
		}
	}
	st := c.Stats()
	if st.Evictions != 1 || st.Admitted != 4 {
		t.Fatalf("stats %+v: want 1 eviction, 4 admissions", st)
	}
	if c.Used() != 3 || c.Len() != 3 {
		t.Fatalf("used %d len %d, want 3/3", c.Used(), c.Len())
	}
}

func TestCacheRejectsOversizeEntry(t *testing.T) {
	c := NewCache("t", 10, nil)
	if c.Put("big", nil, 11) {
		t.Fatal("entry larger than the cache admitted")
	}
	if c.Stats().Rejected != 1 {
		t.Fatal("oversize rejection not counted")
	}
}

func TestCacheDoorkeeperAdmitsOnSecondRequest(t *testing.T) {
	c := NewCache("t", 4, NewDoorkeeperLRU(0))
	if c.Put("a", nil, 1) {
		t.Fatal("doorkeeper admitted a first-time key")
	}
	if !c.Put("a", nil, 1) {
		t.Fatal("doorkeeper rejected a second-time key")
	}
	if !c.Contains("a") {
		t.Fatal("a not resident after second put")
	}
	if c.Policy() != "doorkeeper-lru" {
		t.Fatalf("policy name %q", c.Policy())
	}
}

func TestCacheDropRemovesEntry(t *testing.T) {
	c := NewCache("t", 2, nil)
	c.Put("a", []byte("x"), 1)
	c.Drop("a")
	if c.Contains("a") || c.Used() != 0 {
		t.Fatal("drop left the entry or its bytes behind")
	}
	c.Drop("a") // idempotent
	// The policy must have forgotten it too: filling the cache again must
	// not try to evict the dropped key.
	c.Put("b", nil, 1)
	c.Put("c", nil, 1)
	c.Put("d", nil, 1)
	if c.Len() != 2 {
		t.Fatalf("len %d, want 2", c.Len())
	}
}

func TestCachePeekDoesNotTouchStats(t *testing.T) {
	c := NewCache("t", 2, nil)
	c.Put("a", []byte("v"), 1)
	before := c.Stats()
	if v, ok := c.Peek("a"); !ok || string(v) != "v" {
		t.Fatal("peek failed")
	}
	if _, ok := c.Peek("zz"); ok {
		t.Fatal("peek found a ghost")
	}
	if c.Stats() != before {
		t.Fatal("peek moved the counters")
	}
}

// TestCacheHitRateMonotoneInCapacity pins LRU's inclusion property: on a
// fixed trace of equal-sized entries, a larger LRU cache's hit rate is never
// worse than a smaller one's.
func TestCacheHitRateMonotoneInCapacity(t *testing.T) {
	const keys = 120
	r := rng.New(42)
	trace := make([]string, 6000)
	for i := range trace {
		k := r.Intn(keys)
		if r.Bernoulli(0.7) { // skew towards a hot set
			k = r.Intn(12)
		}
		trace[i] = fmt.Sprintf("k%03d", k)
	}
	run := func(capacity int64) float64 {
		c := NewCache("t", capacity, NewLRU())
		for _, k := range trace {
			if _, ok := c.Get(k); !ok {
				c.Put(k, nil, 1)
			}
		}
		return c.Stats().HitRate()
	}
	prev := -1.0
	for capacity := int64(1); capacity <= keys; capacity += 7 {
		hr := run(capacity)
		if hr < prev {
			t.Fatalf("hit rate dropped from %.4f to %.4f when capacity grew to %d",
				prev, hr, capacity)
		}
		prev = hr
	}
	if prev < 0.97 { // full-size cache only misses compulsory first touches
		t.Fatalf("full-capacity hit rate %.4f suspiciously low", prev)
	}
}
