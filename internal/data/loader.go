package data

import (
	"fmt"
	"math"
	"sync/atomic"

	"repro/internal/fault"
	"repro/internal/machine"
	"repro/internal/nn"
	"repro/internal/rng"
	"repro/internal/tensor"
)

// TierSpec is the memory/storage hierarchy the loader charges reads against:
// DRAM over NVRAM over the parallel file system. A zero-bandwidth tier makes
// its reads free, so a loader built with the zero TierSpec streams batches
// without any virtual-time accounting.
type TierSpec struct {
	DRAM  machine.MemTier
	NVRAM machine.MemTier
	PFS   machine.MemTier
}

// TiersFromNode extracts the DRAM/NVRAM/PFS tiers from a machine node and
// derates the PFS bandwidth by the number of nodes sharing the file system
// (the same contention model storage.Simulate uses).
func TiersFromNode(node *machine.Node, sharedPFSNodes int) (TierSpec, error) {
	var ts TierSpec
	var ok bool
	if ts.DRAM, ok = node.TierByName("DRAM"); !ok {
		return ts, fmt.Errorf("data: node %q has no DRAM tier", node.Name)
	}
	if ts.NVRAM, ok = node.TierByName("NVRAM"); !ok {
		return ts, fmt.Errorf("data: node %q has no NVRAM tier", node.Name)
	}
	if ts.PFS, ok = node.TierByName("PFS"); !ok {
		return ts, fmt.Errorf("data: node %q has no PFS tier", node.Name)
	}
	if sharedPFSNodes > 1 {
		ts.PFS.BandwidthBps /= float64(sharedPFSNodes)
	}
	return ts, nil
}

// readCost is the virtual seconds to read bytes from a tier; a tier with no
// bandwidth configured costs nothing (timing disabled).
func readCost(t machine.MemTier, bytes int64) float64 {
	if t.BandwidthBps <= 0 {
		return 0
	}
	return t.LatencySec + float64(bytes)/t.BandwidthBps
}

// LoaderConfig configures a streaming loader.
type LoaderConfig struct {
	// Batch is the samples per training batch (required). Batches never span
	// shards, so a shard whose sample count is not a multiple ends with a
	// short batch.
	Batch int
	// Seed drives every random choice: the per-epoch shard order, the
	// within-shard sample order, and the corruption draws. Same seed, same
	// byte stream — regardless of prefetch depth, worker count, or
	// goroutine scheduling.
	Seed uint64
	// Prefetch is the readahead depth in shards: how many shards beyond the
	// one being consumed may be in flight. 0 means synchronous staging
	// (fetch k starts only when shard k-1 is fully consumed); with depth D,
	// up to D+1 buffer slots overlap stage-in with compute and epoch time
	// approaches max(compute, stage-in).
	Prefetch int
	// Workers is the number of decode worker goroutines when Prefetch > 0
	// (<= 0 means min(Prefetch, 4)). With Prefetch == 0 everything runs
	// inline on the caller's goroutine.
	Workers int
	// DRAMBytes and NVRAMBytes are the per-tier cache budgets in logical
	// bytes; 0 disables the tier (DRAMBytes == NVRAMBytes == 0 is the
	// direct-PFS policy).
	DRAMBytes  int64
	NVRAMBytes int64
	// DRAMPolicy and NVRAMPolicy construct the eviction policy for each
	// tier cache (nil means NewLRU). A constructor, not an instance, so
	// Partition can give every rank its own policy state.
	DRAMPolicy  func() EvictionPolicy
	NVRAMPolicy func() EvictionPolicy
	// Tiers prices the reads on the virtual clock. The zero value disables
	// timing.
	Tiers TierSpec
	// ComputePerBatch is the virtual seconds of training compute one batch
	// consumes; it is what stage-in overlaps against.
	ComputePerBatch float64
	// Plan optionally kills decode workers: worker w dies when it picks up
	// the fetch job whose global sequence number matches Plan.KillAt(w, seq).
	// Killed workers stay dead; the loader re-issues the orphaned job to a
	// survivor, or decodes inline when none remain.
	Plan *fault.Plan
	// CorruptProb is the probability that staging a shard copy into a tier
	// cache silently flips one bit of the copy (the gray-failure model).
	// The next read of that copy fails checksum verification and the shard
	// is re-staged from the tier below.
	CorruptProb float64
}

// EpochStats is the virtual-clock account of one fully consumed epoch.
type EpochStats struct {
	// Epoch is the epoch number passed to Reset.
	Epoch int
	// Batches is the number of batches delivered.
	Batches int
	// Seconds is the virtual wall time of the epoch.
	Seconds float64
	// ComputeSeconds is the pure training compute (Batches x ComputePerBatch).
	ComputeSeconds float64
	// StageSeconds is the fetch-channel busy time (sum of all read costs).
	StageSeconds float64
	// StallSeconds is time the consumer spent waiting on fetches.
	StallSeconds float64
	// StallFraction is StallSeconds / Seconds.
	StallFraction float64
	// DRAMHits, NVRAMHits and PFSReads count where each shard fetch was
	// served from.
	DRAMHits  int
	NVRAMHits int
	PFSReads  int
	// Corrupted counts staged copies the gray-failure model flipped a bit
	// in; Restaged counts corrupted copies that were detected by checksum
	// and discarded (then re-fetched from the tier below).
	Corrupted int
	Restaged  int
}

// fetchJob carries one shard fetch through the worker pool. The dispatcher
// decides everything ahead of time — source bytes (always the immutable PFS
// blob), sample order, virtual timings — so workers only do the pure
// blob-to-tensor decode and scheduling cannot affect results.
type fetchJob struct {
	seq      int // global fetch sequence number (fault.Plan step index)
	orderIdx int // position in this epoch's shard order
	shard    int // shard ID
	blob     []byte
	perm     []int // within-shard sample order for this epoch
}

type fetchResult struct {
	orderIdx int
	batches  []batch
}

type batch struct {
	x, y *tensor.Tensor
}

// Loader streams deterministic training batches from a sharded store through
// the tier caches, charging every byte moved to a virtual clock. It
// implements nn.BatchIterator. Not safe for concurrent use: one consumer
// goroutine drives Reset/Next/Close, and that single dispatcher serialises
// all cache decisions, checksum checks and corruption draws — which is what
// makes two same-seed runs byte-identical even with a racing worker pool.
type Loader struct {
	man    *Manifest
	store  *Store
	cfg    LoaderConfig
	shards []int // shard IDs this loader owns (a subset under Partition)

	dram  *Cache // nil when the tier is disabled
	nvram *Cache

	workers int
	live    atomic.Int32
	jobs    chan fetchJob
	requeue chan fetchJob
	results chan fetchResult
	closed  bool

	// Epoch state, owned by the dispatcher.
	started      bool
	epoch        int
	order        []int // permutation of indexes into shards
	corruptR     *rng.Stream
	seq          int
	nextDispatch int
	nextConsume  int
	pending      map[int][]batch // orderIdx -> decoded batches
	fetchEndAt   map[int]float64 // orderIdx -> virtual fetch completion
	cur          []batch
	curBatch     int

	// Virtual clock (absolute; carries across epochs so warm-cache epochs
	// start where the previous one ended).
	fetchEndV   float64
	consumeEndV float64
	epochStartV float64
	stats       EpochStats
	finalized   bool
	history     []EpochStats
}

// NewLoader builds a loader over every shard of the manifest.
func NewLoader(man *Manifest, store *Store, cfg LoaderConfig) (*Loader, error) {
	ids := make([]int, man.NumShards())
	for i := range ids {
		ids[i] = i
	}
	return newLoader(man, store, ids, cfg)
}

func newLoader(man *Manifest, store *Store, shardIDs []int, cfg LoaderConfig) (*Loader, error) {
	if man == nil || store == nil {
		return nil, fmt.Errorf("data: loader needs a manifest and a store")
	}
	if cfg.Batch <= 0 {
		return nil, fmt.Errorf("data: Batch must be > 0, got %d", cfg.Batch)
	}
	if cfg.Prefetch < 0 {
		return nil, fmt.Errorf("data: Prefetch must be >= 0, got %d", cfg.Prefetch)
	}
	if cfg.CorruptProb < 0 || cfg.CorruptProb > 1 {
		return nil, fmt.Errorf("data: CorruptProb %v outside [0,1]", cfg.CorruptProb)
	}
	if len(shardIDs) == 0 {
		return nil, fmt.Errorf("data: loader owns no shards")
	}
	l := &Loader{man: man, store: store, cfg: cfg, shards: shardIDs}
	if cfg.DRAMBytes > 0 {
		l.dram = NewCache("dram", cfg.DRAMBytes, newPolicy(cfg.DRAMPolicy))
	}
	if cfg.NVRAMBytes > 0 {
		l.nvram = NewCache("nvram", cfg.NVRAMBytes, newPolicy(cfg.NVRAMPolicy))
	}
	if cfg.Prefetch > 0 {
		l.workers = cfg.Workers
		if l.workers <= 0 {
			l.workers = min(cfg.Prefetch, 4)
		}
		// Outstanding jobs never exceed the prefetch window, so these
		// capacities guarantee neither dispatcher nor workers ever block
		// on a channel send.
		depth := cfg.Prefetch + 1 + l.workers
		l.jobs = make(chan fetchJob, depth)
		l.results = make(chan fetchResult, depth)
		l.requeue = make(chan fetchJob, l.workers)
		l.live.Store(int32(l.workers))
		for i := 0; i < l.workers; i++ {
			go l.workerLoop(i)
		}
	}
	return l, nil
}

func newPolicy(f func() EvictionPolicy) EvictionPolicy {
	if f == nil {
		return NewLRU()
	}
	return f()
}

// Manifest returns the loader's manifest.
func (l *Loader) Manifest() *Manifest { return l.man }

// NumShards returns how many shards this loader owns.
func (l *Loader) NumShards() int { return len(l.shards) }

// BatchesPerEpoch returns the batches one epoch delivers.
func (l *Loader) BatchesPerEpoch() int {
	n := 0
	for _, id := range l.shards {
		n += (l.man.Shards[id].Samples() + l.cfg.Batch - 1) / l.cfg.Batch
	}
	return n
}

// SamplesPerEpoch returns the samples one epoch delivers.
func (l *Loader) SamplesPerEpoch() int {
	n := 0
	for _, id := range l.shards {
		n += l.man.Shards[id].Samples()
	}
	return n
}

// DRAM and NVRAM expose the tier caches (nil when disabled).
func (l *Loader) DRAM() *Cache  { return l.dram }
func (l *Loader) NVRAM() *Cache { return l.nvram }

// Clock returns the loader's virtual now in seconds.
func (l *Loader) Clock() float64 { return l.consumeEndV }

// History returns the stats of every fully consumed epoch, in order.
func (l *Loader) History() []EpochStats {
	out := make([]EpochStats, len(l.history))
	copy(out, l.history)
	return out
}

// LastEpoch returns the most recently completed epoch's stats.
func (l *Loader) LastEpoch() (EpochStats, bool) {
	if len(l.history) == 0 {
		return EpochStats{}, false
	}
	return l.history[len(l.history)-1], true
}

// Residency reports the highest tier shard id is currently staged in:
// "dram", "nvram", or "pfs" (authoritative copy only).
func (l *Loader) Residency(id int) string {
	name := l.man.Shards[id].Name
	if l.dram != nil && l.dram.Contains(name) {
		return "dram"
	}
	if l.nvram != nil && l.nvram.Contains(name) {
		return "nvram"
	}
	return "pfs"
}

// InjectCorruption flips one bit of shard id's staged copy in its highest
// resident tier, returning whether a copy was resident. A test hook for the
// chaos suite; call it from the consumer goroutine between batches.
func (l *Loader) InjectCorruption(id int) bool {
	name := l.man.Shards[id].Name
	for _, c := range []*Cache{l.dram, l.nvram} {
		if c == nil {
			continue
		}
		if v, ok := c.Peek(name); ok && len(v) > 0 {
			v[0] ^= 1
			return true
		}
	}
	return false
}

// stream derives a fresh deterministic stream for a label — a pure function
// of (Seed, label), independent of how much randomness was drawn before.
func (l *Loader) stream(label string) *rng.Stream {
	return rng.New(l.cfg.Seed).Split(label)
}

// Reset starts (or restarts) an epoch: it drains any in-flight fetches,
// reseeds the epoch's shard order, sample orders and corruption draws purely
// from (Seed, epoch), and primes the prefetch window. Resetting the same
// epoch twice replays it exactly (modulo cache warmth).
func (l *Loader) Reset(epoch int) {
	l.drain()
	l.started = true
	l.epoch = epoch
	l.order = l.stream(fmt.Sprintf("e%d.order", epoch)).Perm(len(l.shards))
	l.corruptR = l.stream(fmt.Sprintf("e%d.corrupt", epoch))
	l.nextDispatch, l.nextConsume = 0, 0
	l.cur, l.curBatch = nil, 0
	l.pending = map[int][]batch{}
	l.fetchEndAt = map[int]float64{}
	l.epochStartV = l.consumeEndV
	l.stats = EpochStats{Epoch: epoch}
	l.finalized = false
	for l.nextDispatch < len(l.order) && l.nextDispatch < l.cfg.Prefetch+1 {
		l.dispatchNext()
	}
}

// Next returns the next batch of the epoch, or ok=false when the epoch is
// exhausted (call Reset to start the next one). Implements nn.BatchIterator.
func (l *Loader) Next() (x, y *tensor.Tensor, ok bool) {
	if !l.started {
		l.Reset(0)
	}
	if l.curBatch >= len(l.cur) {
		if l.nextConsume >= len(l.order) {
			l.finalize()
			return nil, nil, false
		}
		l.consumeNext()
	}
	b := l.cur[l.curBatch]
	l.curBatch++
	return b.x, b.y, true
}

// Close drains in-flight fetches and stops the worker pool. Idempotent.
func (l *Loader) Close() {
	if l.closed {
		return
	}
	l.closed = true
	if l.jobs != nil {
		l.drain()
		close(l.jobs)
	}
}

// consumeNext pops the next shard in order, charges the virtual clock for
// the wait and the compute, and refills the prefetch window.
func (l *Loader) consumeNext() {
	idx := l.nextConsume
	batches := l.await(idx)
	l.nextConsume++
	start := math.Max(l.consumeEndV, l.fetchEndAt[idx])
	delete(l.fetchEndAt, idx)
	l.stats.StallSeconds += start - l.consumeEndV
	compute := float64(len(batches)) * l.cfg.ComputePerBatch
	l.stats.ComputeSeconds += compute
	l.stats.Batches += len(batches)
	l.consumeEndV = start + compute
	l.cur, l.curBatch = batches, 0
	// A buffer slot freed: keep up to Prefetch+1 shards in flight.
	for l.nextDispatch < len(l.order) && l.nextDispatch < l.nextConsume+l.cfg.Prefetch+1 {
		l.dispatchNext()
	}
}

// dispatchNext plans the next shard fetch: the dispatcher serially decides
// the source tier, mutates the caches, draws any corruption, and books the
// fetch on the virtual clock; only the pure decode goes to the worker pool.
func (l *Loader) dispatchNext() {
	idx := l.nextDispatch
	l.nextDispatch++
	shardID := l.shards[l.order[idx]]
	sh := l.man.Shards[shardID]
	cost := l.planFetch(sh)
	start := math.Max(l.fetchEndV, l.consumeEndV)
	l.fetchEndV = start + cost
	l.stats.StageSeconds += cost
	l.fetchEndAt[idx] = l.fetchEndV
	blob, err := l.store.Blob(shardID)
	if err != nil {
		panic(fmt.Sprintf("data: loader: %v", err))
	}
	perm := l.stream(fmt.Sprintf("e%d.s%d", l.epoch, shardID)).Perm(sh.Samples())
	job := fetchJob{seq: l.seq, orderIdx: idx, shard: shardID, blob: blob, perm: perm}
	l.seq++
	if l.workers == 0 || l.live.Load() == 0 {
		l.pending[idx] = l.materialize(job)
	} else {
		l.jobs <- job
	}
}

// planFetch picks the tier a shard is served from, verifies staged copies,
// stages/promotes as configured, and returns the read cost. Dispatcher-only.
func (l *Loader) planFetch(sh Shard) float64 {
	key := sh.Name
	if l.dram != nil {
		if v, ok := l.dram.Get(key); ok {
			if l.store.VerifyShard(sh.ID, v) {
				l.stats.DRAMHits++
				return readCost(l.cfg.Tiers.DRAM, sh.Bytes)
			}
			// Silent corruption caught by the checksum: discard, fall
			// through to the tier below.
			l.dram.Drop(key)
			l.stats.Restaged++
		}
	}
	if l.nvram != nil {
		if v, ok := l.nvram.Get(key); ok {
			if l.store.VerifyShard(sh.ID, v) {
				l.stats.NVRAMHits++
				if l.dram != nil {
					l.dram.Put(key, l.stageCopy(v), sh.Bytes)
				}
				return readCost(l.cfg.Tiers.NVRAM, sh.Bytes)
			}
			l.nvram.Drop(key)
			l.stats.Restaged++
		}
	}
	blob, err := l.store.Blob(sh.ID)
	if err != nil {
		panic(fmt.Sprintf("data: loader: %v", err))
	}
	l.stats.PFSReads++
	if l.nvram != nil {
		l.nvram.Put(key, l.stageCopy(blob), sh.Bytes)
	} else if l.dram != nil {
		l.dram.Put(key, l.stageCopy(blob), sh.Bytes)
	}
	return readCost(l.cfg.Tiers.PFS, sh.Bytes)
}

// stageCopy copies src for residence in a tier cache, flipping one bit with
// probability CorruptProb (the silent-corruption gray-failure model; the
// flip is found by checksum on the copy's next read, never served).
func (l *Loader) stageCopy(src []byte) []byte {
	cp := append([]byte(nil), src...)
	if l.cfg.CorruptProb > 0 && len(cp) > 0 && l.corruptR.Bernoulli(l.cfg.CorruptProb) {
		bit := l.corruptR.Intn(len(cp) * 8)
		cp[bit>>3] ^= 1 << (bit & 7)
		l.stats.Corrupted++
	}
	return cp
}

// materialize decodes a shard fetch into its epoch batches — a pure function
// of the job, safe on any goroutine.
func (l *Loader) materialize(job fetchJob) []batch {
	xd, yd := l.man.XDim, l.man.YDim
	n := len(job.perm)
	batches := make([]batch, 0, (n+l.cfg.Batch-1)/l.cfg.Batch)
	for lo := 0; lo < n; lo += l.cfg.Batch {
		hi := min(lo+l.cfg.Batch, n)
		bx := tensor.New(hi-lo, xd)
		by := tensor.New(hi-lo, yd)
		for i := lo; i < hi; i++ {
			decodeRow(job.blob, job.perm[i], xd, yd,
				bx.Data[(i-lo)*xd:(i-lo+1)*xd], by.Data[(i-lo)*yd:(i-lo+1)*yd])
		}
		batches = append(batches, batch{x: bx, y: by})
	}
	return batches
}

// await blocks until the batches for order index idx are available, handling
// worker deaths: orphaned jobs from killed workers are re-issued to
// survivors, or decoded inline when none remain.
func (l *Loader) await(idx int) []batch {
	for {
		if b, ok := l.pending[idx]; ok {
			delete(l.pending, idx)
			return b
		}
		if l.workers == 0 {
			panic("data: loader: batch missing with no worker pool")
		}
		if l.live.Load() > 0 {
			select {
			case res := <-l.results:
				l.pending[res.orderIdx] = res.batches
			case job := <-l.requeue:
				l.reissue(job)
			}
			continue
		}
		// Every worker is dead: results may still be buffered, and
		// dispatched jobs may sit unclaimed in the jobs channel.
		select {
		case res := <-l.results:
			l.pending[res.orderIdx] = res.batches
		case job := <-l.requeue:
			l.pending[job.orderIdx] = l.materialize(job)
		case job := <-l.jobs:
			l.pending[job.orderIdx] = l.materialize(job)
		}
	}
}

// reissue hands a killed worker's job to a survivor, or decodes it inline.
func (l *Loader) reissue(job fetchJob) {
	if l.live.Load() > 0 {
		l.jobs <- job
	} else {
		l.pending[job.orderIdx] = l.materialize(job)
	}
}

// drain consumes (and discards) every dispatched-but-unconsumed fetch so the
// loader can be reset or closed without stranding jobs.
func (l *Loader) drain() {
	for l.nextConsume < l.nextDispatch {
		l.await(l.nextConsume)
		l.nextConsume++
	}
}

// finalize seals the epoch's stats once the last batch has been delivered.
func (l *Loader) finalize() {
	if l.finalized || !l.started {
		return
	}
	l.finalized = true
	l.stats.Seconds = l.consumeEndV - l.epochStartV
	if l.stats.Seconds > 0 {
		l.stats.StallFraction = l.stats.StallSeconds / l.stats.Seconds
	}
	l.history = append(l.history, l.stats)
}

// workerLoop is one decode worker. On a planned kill it pushes its job to
// the requeue channel and exits for good — the dispatcher notices via the
// live counter and routes around it.
func (l *Loader) workerLoop(id int) {
	for job := range l.jobs {
		if l.cfg.Plan.KillAt(id, job.seq) {
			l.live.Add(-1)
			l.requeue <- job
			return
		}
		l.results <- fetchResult{orderIdx: job.orderIdx, batches: l.materialize(job)}
	}
}

// Partition splits a manifest's shards round-robin across ranks for
// data-parallel training: rank r owns shards r, r+ranks, r+2*ranks, ... Each
// rank gets its own Loader (own caches, own seed stream) over its shard
// subset, and every rank delivers the same number of steps per epoch so the
// ranks stay in lockstep. Implements parallel.ShardedData.
type Partition struct {
	loaders []*Loader
	steps   int
	dropped int
}

// NewPartition builds per-rank loaders over man. Every assigned shard must
// hold exactly ShardSamples samples; when the shard count is not a multiple
// of ranks the trailing shards are dropped (see Dropped).
func NewPartition(man *Manifest, store *Store, ranks int, cfg LoaderConfig) (*Partition, error) {
	if ranks <= 0 {
		return nil, fmt.Errorf("data: ranks must be > 0, got %d", ranks)
	}
	per := man.NumShards() / ranks
	if per == 0 {
		return nil, fmt.Errorf("data: %d shards cannot feed %d ranks", man.NumShards(), ranks)
	}
	if cfg.Batch <= 0 {
		return nil, fmt.Errorf("data: Batch must be > 0, got %d", cfg.Batch)
	}
	use := ranks * per
	for i := 0; i < use; i++ {
		if man.Shards[i].Samples() != man.ShardSamples {
			return nil, fmt.Errorf("data: shard %d holds %d samples, want %d: lockstep ranks need equal shards",
				i, man.Shards[i].Samples(), man.ShardSamples)
		}
	}
	batchesPerShard := (man.ShardSamples + cfg.Batch - 1) / cfg.Batch
	p := &Partition{steps: per * batchesPerShard, dropped: man.NumShards() - use}
	root := rng.New(cfg.Seed)
	for r := 0; r < ranks; r++ {
		ids := make([]int, 0, per)
		for i := r; i < use; i += ranks {
			ids = append(ids, i)
		}
		cfgr := cfg
		cfgr.Seed = root.SplitN(r).Uint64()
		l, err := newLoader(man, store, ids, cfgr)
		if err != nil {
			p.Close()
			return nil, err
		}
		p.loaders = append(p.loaders, l)
	}
	return p, nil
}

// Workers returns the rank count.
func (p *Partition) Workers() int { return len(p.loaders) }

// StepsPerEpoch returns the per-rank batches per epoch (equal across ranks).
func (p *Partition) StepsPerEpoch() int { return p.steps }

// Iterator returns rank r's batch iterator.
func (p *Partition) Iterator(rank int) nn.BatchIterator { return p.loaders[rank] }

// Loader returns rank r's loader for stats and residency queries.
func (p *Partition) Loader(rank int) *Loader { return p.loaders[rank] }

// Dropped returns how many trailing shards were left unassigned to keep the
// ranks' shard counts equal.
func (p *Partition) Dropped() int { return p.dropped }

// Close closes every rank's loader.
func (p *Partition) Close() {
	for _, l := range p.loaders {
		l.Close()
	}
}
