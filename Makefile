# Development gate for the repository. `make check` is what CI should run.

GO ?= go

.PHONY: check vet build test chaos bench-overhead bench-checkpoint bench clean

check: vet build test chaos bench-overhead

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test -race ./...

# Deterministic chaos suite under the race detector: failure-injection
# schedules (internal/fault), checkpoint/resume bitwise-continue
# (internal/nn), elastic worker-kill recovery (internal/parallel), and
# campaign retry-with-requeue (internal/core). Redundant with `test` on a
# full run, but kept as an explicit gate so the fault paths can be exercised
# alone (`make chaos`) and stay race-clean.
chaos:
	$(GO) test -race ./internal/fault ./internal/core \
		-run 'Fault|Campaign|Schedule|Attempt|Plan|Daly|Simulate'
	$(GO) test -race ./internal/nn -run 'Resume|TrainState|Checkpoint'
	$(GO) test -race ./internal/parallel -run 'Elastic'

# Instrumentation overhead: trains the same network with no obs session,
# a disabled one, and an enabled one. The disabled column must stay within
# a few percent of the uninstrumented baseline (see BENCH_obs.json).
bench-overhead:
	$(GO) test ./internal/obs -run xxx -bench Overhead -benchtime 2s

# Checkpoint overhead: the same training run with checkpointing off, every
# epoch, and every other epoch (see BENCH_fault.json).
bench-checkpoint:
	$(GO) test ./internal/nn -run xxx -bench Checkpoint -benchtime 2s

# Regenerate every experiment table + micro-benchmarks.
bench:
	$(GO) test -bench . -benchmem

clean:
	$(GO) clean ./...
