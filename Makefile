# Development gate for the repository. `make check` is what CI should run.

GO ?= go

.PHONY: check vet build test chaos fuzz cover bench-overhead bench-obs bench-checkpoint bench bench-serve bench-resil bench-rollout bench-comm bench-kernels bench-data bench-search clean

check: vet build test chaos cover bench-overhead

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test -race ./...

# Deterministic chaos suite under the race detector: failure-injection
# schedules (internal/fault), checkpoint/resume bitwise-continue
# (internal/nn), elastic worker-kill recovery (internal/parallel), campaign
# retry/backoff/quarantine and the sharded multi-tenant fleet scheduler
# under scripted shard kills, gray degradation, preemption and work
# stealing (internal/core Fleet*), and the gray-failure suites —
# degraded-replica ejection, hedged execution, retry budgets
# and replica kills mid-canary-promotion (internal/serve), flaky-link
# collectives and CRC framing (internal/comm),
# and overlapped bucketed allreduce under worker kills and flaky links
# (internal/parallel Chaos*, internal/comm Bucket*), and the streaming data
# plane under decode-worker kills and silently corrupted staged shards
# (internal/data Chaos*).
# Redundant with `test` on a full run, but kept as an explicit gate so the
# fault paths can be exercised alone (`make chaos`) and stay race-clean.
chaos:
	$(GO) test -race ./internal/fault ./internal/core \
		-run 'Fault|Campaign|Schedule|Attempt|Plan|Daly|Simulate|Gray|Link|Backoff|Quarantine|Poison|Fleet|Steal|Preempt|Tenant'
	$(GO) test -race ./internal/nn -run 'Resume|TrainState|Checkpoint'
	$(GO) test -race ./internal/parallel -run 'Elastic|Chaos|Overlapped|Bucket'
	$(GO) test -race ./internal/serve -run 'Chaos|Fault|Gray|Retry|Hedge'
	$(GO) test -race ./internal/comm -run 'Flaky|Frame|Watchdog|Timeout|Bucket'
	$(GO) test -race ./internal/data -run 'Chaos|Kill|Corrupt'

# Regenerate the committed gray-failure resilience artifact
# (BENCH_resil.json): the hedging frontier under a 10x degraded replica.
# Deterministic like bench-serve; TestCommittedResilArtifactIsCurrent fails
# if the committed copy drifts.
bench-resil:
	$(GO) run ./cmd/candleserve -resil -json BENCH_resil.json

# Regenerate the committed self-healing control-plane artifact
# (BENCH_rollout.json): shadow catch, bounded canary rollback, clean
# promotion, and the flash-crowd autoscaling comparison. Deterministic like
# bench-serve; TestCommittedRolloutArtifactIsCurrent fails if the committed
# copy drifts.
bench-rollout:
	$(GO) run ./cmd/candleserve -rollout -json BENCH_rollout.json

# Fuzz the blocked tensor kernels against the naive references in
# internal/tensor/ref_test.go, and the float32 backend registry against the
# flat float32 reference (every registered backend per input). Short budgets
# per target: the seed corpus already pins the block/panel boundaries, so CI
# just buys a little exploration.
FUZZTIME ?= 10s
fuzz:
	$(GO) test -run '^$$' -fuzz '^FuzzMatMul$$' -fuzztime $(FUZZTIME) ./internal/tensor
	$(GO) test -run '^$$' -fuzz '^FuzzMatMulTransA$$' -fuzztime $(FUZZTIME) ./internal/tensor
	$(GO) test -run '^$$' -fuzz '^FuzzMatMulTransB$$' -fuzztime $(FUZZTIME) ./internal/tensor
	$(GO) test -run '^$$' -fuzz '^FuzzConv$$' -fuzztime $(FUZZTIME) ./internal/tensor
	$(GO) test -run '^$$' -fuzz '^FuzzMatMulF32$$' -fuzztime $(FUZZTIME) ./internal/tensor
	$(GO) test -run '^$$' -fuzz '^FuzzConvF32$$' -fuzztime $(FUZZTIME) ./internal/tensor
	$(GO) test -run '^$$' -fuzz '^FuzzCommFrame$$' -fuzztime $(FUZZTIME) ./internal/comm
	$(GO) test -run '^$$' -fuzz '^FuzzCompressRoundTrip$$' -fuzztime $(FUZZTIME) ./internal/lowp
	$(GO) test -run '^$$' -fuzz '^FuzzShardManifest$$' -fuzztime $(FUZZTIME) ./internal/data
	$(GO) test -run '^$$' -fuzz '^FuzzSLOSpec$$' -fuzztime $(FUZZTIME) ./internal/obs
	$(GO) test -run '^$$' -fuzz '^FuzzArchDSL$$' -fuzztime $(FUZZTIME) ./internal/hpo

# Coverage gate: per-package floors (70% for serve, tensor, nn, fault, comm,
# parallel, lowp, data, storage, core, hpo) with a coverage-vs-floor delta
# table. See scripts/cover.sh.
cover:
	bash scripts/cover.sh

# Instrumentation overhead: trains the same network with no obs session,
# a disabled one, and an enabled one. The disabled column must stay within
# a few percent of the uninstrumented baseline (see BENCH_obs.json).
bench-overhead:
	$(GO) test ./internal/obs -run xxx -bench Overhead -benchtime 2s

# Full instrumentation-overhead sweep behind BENCH_obs.json: the training
# benchmark above plus the serving-path one (request-scoped tracing call
# sites: trace minting at admission, histogram exemplars on completion,
# flight events on shed), 5 samples each. Paste the medians into
# BENCH_obs.json; the disabled column must stay <=2% off the nil baseline.
bench-obs:
	$(GO) test ./internal/obs -run xxx -bench Overhead -benchtime 2s -count 5

# Checkpoint overhead: the same training run with checkpointing off, every
# epoch, and every other epoch (see BENCH_fault.json).
bench-checkpoint:
	$(GO) test ./internal/nn -run xxx -bench Checkpoint -benchtime 2s

# Regenerate the committed gradient-communication profile (BENCH_comm.json):
# the modelled step-time frontier for bucketed overlapped allreduce and
# error-feedback compression. Pure machine-model output, so byte-stable;
# TestCommittedCommArtifactIsCurrent fails if the committed copy drifts.
bench-comm:
	$(GO) run ./cmd/candlebench -comm BENCH_comm.json

# Regenerate the committed serving load-test artifact (BENCH_serve.json).
# The simulator is deterministic, so this only changes when the serving
# policy or the load profile does; TestCommittedBenchArtifactIsCurrent
# fails if the committed copy drifts.
bench-serve:
	$(GO) run ./cmd/candleserve -bench -json BENCH_serve.json

# Regenerate the committed float32 kernel-engine profile
# (BENCH_kernels.json): GFLOP/s per registered backend and the ComputeF32
# training uplift, measured on this host. Wall-clock numbers, so the
# artifact test asserts the committed headline invariants (packed f32 >= 2x
# f64 blocked at 512³, train speedup > 1) and schema currency, not bytes.
bench-kernels:
	$(GO) run ./cmd/candlebench -kernels BENCH_kernels.json

# Regenerate the committed tiered-staging data-plane profile
# (BENCH_data.json): E7's NVRAM crossover re-derived by executing the sharded
# streaming loader on its virtual clock. Deterministic, so byte-stable;
# TestCommittedDataArtifactIsCurrent fails if the committed copy drifts.
bench-data:
	$(GO) run ./cmd/candlebench -data BENCH_data.json

# Regenerate the committed search-at-scale profile (BENCH_search.json):
# delivered eval throughput of the sharded multi-tenant fleet under shard
# kills and gray faults at 1k-100k modelled nodes, and the random/RL/PBT
# search-quality comparison at the eval budget each scale delivers.
# Virtual-clock plus analytic landscape, so byte-stable;
# TestCommittedSearchArtifactIsCurrent fails if the committed copy drifts.
bench-search:
	$(GO) run ./cmd/candlebench -search BENCH_search.json

# Regenerate every experiment table + micro-benchmarks.
bench:
	$(GO) test -bench . -benchmem

clean:
	$(GO) clean ./...
