# Development gate for the repository. `make check` is what CI should run.

GO ?= go

.PHONY: check vet build test bench-overhead bench clean

check: vet build test bench-overhead

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test -race ./...

# Instrumentation overhead: trains the same network with no obs session,
# a disabled one, and an enabled one. The disabled column must stay within
# a few percent of the uninstrumented baseline (see BENCH_obs.json).
bench-overhead:
	$(GO) test ./internal/obs -run xxx -bench Overhead -benchtime 2s

# Regenerate every experiment table + micro-benchmarks.
bench:
	$(GO) test -bench . -benchmem

clean:
	$(GO) clean ./...
