#!/usr/bin/env bash
# Coverage gate: runs `go test -cover` over every package, prints a coverage
# table with the per-package floors, and fails if any floored package dips
# below its floor. The delta column is (coverage - floor) for floored
# packages, so regressions show up as a shrinking margin long before they
# break the build.
set -euo pipefail
cd "$(dirname "$0")/.."

GO="${GO:-go}"

# Per-package floors, in percent. The serving subsystem, the kernels it
# calls, and the model layer are the packages where an uncovered branch is
# most likely to hide a correctness bug; the failure-injection and comm
# layers are where an uncovered branch is a resilience hole (an untested
# retransmit or ejection path only fires during an incident); the parallel
# trainer and the compression codecs carry the bucketed-overlap equivalence
# guarantees, where an uncovered branch is a silent-divergence hole; the obs
# layer is the instrument everything else is read through — an uncovered
# branch there is a blind spot that silently corrupts every dashboard; the
# campaign/fleet scheduler and the search strategies decide where every
# node-hour goes, so an uncovered branch there quietly wastes the machine.
declare -A FLOOR=(
  [repro/internal/obs]=70
  [repro/internal/serve]=70
  [repro/internal/tensor]=70
  [repro/internal/nn]=70
  [repro/internal/fault]=70
  [repro/internal/comm]=70
  [repro/internal/parallel]=70
  [repro/internal/lowp]=70
  [repro/internal/data]=70
  [repro/internal/storage]=70
  [repro/internal/core]=70
  [repro/internal/hpo]=70
)

out="$("$GO" test -cover ./... 2>&1)" || { echo "$out"; exit 1; }

fail=0
printf '%-32s %9s %7s %7s\n' PACKAGE COVERAGE FLOOR DELTA
while IFS= read -r line; do
  case "$line" in
    ok*coverage:*"% of statements"*) ;;
    *) continue ;;
  esac
  pkg=$(awk '{print $2}' <<<"$line")
  cov=$(sed -E 's/.*coverage: ([0-9.]+)% of statements.*/\1/' <<<"$line")
  floor="${FLOOR[$pkg]:-}"
  if [[ -n "$floor" ]]; then
    delta=$(awk -v c="$cov" -v f="$floor" 'BEGIN{printf "%+.1f", c-f}')
    printf '%-32s %8s%% %6s%% %7s\n' "$pkg" "$cov" "$floor" "$delta"
    if awk -v c="$cov" -v f="$floor" 'BEGIN{exit !(c < f)}'; then
      echo "FAIL: $pkg coverage ${cov}% is below the ${floor}% floor" >&2
      fail=1
    fi
  else
    printf '%-32s %8s%% %7s %7s\n' "$pkg" "$cov" - -
  fi
done <<<"$out"

exit "$fail"
