// Histology: the 2-D imaging extension workload. Trains the convolutional
// tissue-patch classifier with a warmup-cosine learning-rate schedule and
// early stopping, and contrasts it against a dense network of similar size —
// the paper's "automated systems routinely out-performing human expertise"
// diagnosis driver in miniature.
package main

import (
	"fmt"
	"log"

	"repro/candle"
)

func main() {
	w, err := candle.WorkloadByName("histology")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("workload:", w.Description)

	r := candle.NewRNG(7)
	train, test := w.Generate(candle.Small, r.Split("data"))
	fmt.Println("train:", train)

	conv := w.NewModel(w.DefaultConfig(), train.Dim(), train.OutDim(), r.Split("conv"))
	fmt.Println("conv model: ", conv)
	dense := candle.MLP(train.Dim(), []int{64, 32}, train.OutDim(), candle.ReLU, r.Split("dense"))
	fmt.Println("dense model:", dense)

	trainModel := func(net *candle.Net, tag string) float64 {
		var stopper candle.EarlyStopper
		stopper.Patience = 6
		res, err := candle.Train(net, train.X, train.Y, candle.TrainConfig{
			Loss:      candle.SoftmaxCELoss{},
			Optimizer: candle.NewAdam(0.002),
			BatchSize: 32,
			Epochs:    40,
			Schedule:  candle.WarmupCosine{WarmupEpochs: 3, MinFactor: 0.05},
			Shuffle:   true,
			RNG:       r.Split("sh-" + tag),
			OnEpoch: func(epoch int, loss float64) bool {
				return !stopper.Observe(loss)
			},
		})
		if err != nil {
			log.Fatal(err)
		}
		acc := candle.EvaluateClassifier(net, test.X, test.Labels)
		fmt.Printf("%-5s  epochs=%-3d final-loss=%.4f  test-accuracy=%.3f\n",
			tag, len(res.EpochLoss), res.FinalLoss, acc)
		return acc
	}

	convAcc := trainModel(conv, "conv")
	denseAcc := trainModel(dense, "dense")
	fmt.Printf("\nspatial structure advantage (conv - dense): %+.3f\n", convAcc-denseAcc)
	fmt.Println("the per-pixel marginals are matched across classes, so the dense")
	fmt.Println("model must memorise textures the convolution reads off directly")
}
