// Quickstart: generate a tumor-expression dataset, train the reference
// classifier, and evaluate it — the 60-second tour of the candle API.
package main

import (
	"fmt"
	"log"

	"repro/candle"
)

func main() {
	// 1. Pick a driver problem. "tumor" is the NT3/TC1-shaped task:
	//    classify tumor type from an RNA expression profile.
	w, err := candle.WorkloadByName("tumor")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("workload:", w.Description)

	// 2. Generate deterministic synthetic data and split train/test.
	r := candle.NewRNG(2017)
	train, test := w.Generate(candle.Small, r.Split("data"))
	fmt.Println("train:", train)
	fmt.Println("test: ", test)

	// 3. Build the reference model for the default hyperparameters.
	net := w.NewModel(w.DefaultConfig(), train.Dim(), train.OutDim(), r.Split("init"))
	fmt.Println("model:", net)

	// 4. Train.
	res, err := candle.Train(net, train.X, train.Y, candle.TrainConfig{
		Loss:      candle.SoftmaxCELoss{},
		Optimizer: candle.NewAdam(0.003),
		BatchSize: 32,
		Epochs:    15,
		Shuffle:   true,
		RNG:       r.Split("shuffle"),
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("loss: %.4f -> %.4f over %d epochs\n",
		res.EpochLoss[0], res.FinalLoss, len(res.EpochLoss))

	// 5. Evaluate on held-out profiles.
	acc := candle.EvaluateClassifier(net, test.X, test.Labels)
	fmt.Printf("test accuracy: %.3f\n", acc)
}
