// AMR: the infectious-disease driver. Trains an antibiotic-resistance
// classifier on k-mer genomes, then ranks k-mers by a gradient saliency
// score to "identify novel antibiotic resistance mechanisms" — the planted
// resistance markers should surface at the top.
package main

import (
	"fmt"
	"log"
	"math"
	"sort"

	"repro/candle"
)

func main() {
	w, err := candle.WorkloadByName("amr")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("workload:", w.Description)

	r := candle.NewRNG(11)
	train, test := w.Generate(candle.Small, r.Split("data"))
	net := w.NewModel(w.DefaultConfig(), train.Dim(), train.OutDim(), r.Split("init"))
	if _, err := candle.Train(net, train.X, train.Y, candle.TrainConfig{
		Loss: candle.SoftmaxCELoss{}, Optimizer: candle.NewAdamW(0.005, 0.01),
		BatchSize: 32, Epochs: 40, Shuffle: true, RNG: r.Split("sh"),
	}); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("resistance prediction accuracy: %.3f\n\n",
		candle.EvaluateClassifier(net, test.X, test.Labels))

	// Mechanism discovery by occlusion saliency: for each k-mer, how much
	// does zeroing it reduce the mean predicted resistance probability of
	// resistant genomes?
	resistant := subsetByLabel(test, 1)
	baseline := meanResistanceScore(net, resistant)
	type saliency struct {
		kmer int
		drop float64
	}
	sal := make([]saliency, resistant.Dim())
	for k := 0; k < resistant.Dim(); k++ {
		occluded := resistant.X.Clone()
		for i := 0; i < occluded.Dim(0); i++ {
			occluded.Set(0, i, k)
		}
		ds := &candle.Dataset{X: occluded, Y: resistant.Y, Labels: resistant.Labels, NumClasses: 2}
		sal[k] = saliency{kmer: k, drop: baseline - meanResistanceScore(net, ds)}
	}
	sort.Slice(sal, func(i, j int) bool { return sal[i].drop > sal[j].drop })
	fmt.Println("top 12 k-mers by occlusion saliency (candidate resistance markers):")
	for _, s := range sal[:12] {
		fmt.Printf("  kmer %3d  score drop %.4f\n", s.kmer, s.drop)
	}
	fmt.Println("\n(compare against the planted mechanism markers in internal/biodata)")
}

func subsetByLabel(ds *candle.Dataset, label int) *candle.Dataset {
	var idx []int
	for i, l := range ds.Labels {
		if l == label {
			idx = append(idx, i)
		}
	}
	x := candle.NewTensor(len(idx), ds.Dim())
	y := candle.NewTensor(len(idx), ds.OutDim())
	labels := make([]int, len(idx))
	for i, s := range idx {
		copy(x.Row(i).Data, ds.X.Row(s).Data)
		copy(y.Row(i).Data, ds.Y.Row(s).Data)
		labels[i] = ds.Labels[s]
	}
	return &candle.Dataset{X: x, Y: y, Labels: labels, NumClasses: ds.NumClasses}
}

// meanResistanceScore returns the mean softmax probability of class 1.
func meanResistanceScore(net *candle.Net, ds *candle.Dataset) float64 {
	out := net.Forward(ds.X, false)
	total := 0.0
	for i := 0; i < out.Dim(0); i++ {
		// softmax over 2 logits
		a, b := out.At(i, 0), out.At(i, 1)
		m := a
		if b > m {
			m = b
		}
		ea, eb := math.Exp(a-m), math.Exp(b-m)
		total += eb / (ea + eb)
	}
	return total / float64(out.Dim(0))
}
