// Drug response: the P1B3-shaped workload. Trains a dose-response
// regressor, then runs a Hyperband hyperparameter search against a random-
// search baseline at the same budget — the paper's "intelligent searching
// strategies" in miniature.
package main

import (
	"fmt"
	"log"

	"repro/candle"
)

func main() {
	w, err := candle.WorkloadByName("drugresponse")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("workload:", w.Description)

	// Baseline: reference model at default hyperparameters.
	r := candle.NewRNG(7)
	train, test := w.Generate(candle.Tiny, r.Split("data"))
	net := w.NewModel(w.DefaultConfig(), train.Dim(), train.OutDim(), r.Split("init"))
	if _, err := candle.Train(net, train.X, train.Y, candle.TrainConfig{
		Loss: candle.MSELoss{}, Optimizer: candle.NewAdam(0.003),
		BatchSize: 32, Epochs: 20, Shuffle: true, RNG: r.Split("sh"),
	}); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("default config test MSE: %.5f\n\n",
		candle.EvaluateRegression(net, test.X, test.Y))

	// Search: Hyperband vs random at equal budget.
	const budget = 12
	for _, strat := range []candle.SearchStrategy{
		candle.RandomSearch{}, candle.Hyperband{},
	} {
		res, err := strat.Search(w.Objective(candle.Tiny), candle.SearchOptions{
			Space:       w.Space,
			TotalBudget: budget,
			Parallelism: 4,
			RNG:         candle.NewRNG(99).Split(strat.Name()),
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-10s best test MSE %.5f after %d trials (budget %.1f)\n",
			strat.Name(), res.Best.Loss, len(res.Trials), res.CostUsed)
		fmt.Printf("           config: %s\n", w.Space.FormatConfig(res.Best.Config))
	}
}
