// MD surrogate: deep learning "supervising large-scale multi-resolution
// molecular dynamics simulations". A classifier is trained online on the
// early frames of a simulated trajectory; it then watches the stream,
// labels each new frame's metastable state, and flags transition events —
// the points where a real campaign would spawn fine-resolution runs.
package main

import (
	"fmt"
	"log"

	"repro/candle"
	"repro/internal/biodata"
	"repro/internal/rng"
)

func main() {
	// Simulate a RAS-like trajectory hopping between 3 metastable states.
	cfg := biodata.DefaultMDConfig()
	cfg.Frames = 4000
	ds := biodata.MDTrajectory(cfg, rng.New(99))
	fmt.Printf("trajectory: %d frames, %d contacts/frame, %d transitions\n",
		ds.N(), ds.Dim(), biodata.TransitionCount(ds.Labels))

	// Supervise on the first quarter (the "already simulated" part).
	cut := ds.N() / 4
	trainX := ds.X.SliceRows(0, cut)
	trainY := ds.Y.SliceRows(0, cut)
	net := candle.MLP(ds.Dim(), []int{48}, cfg.States, candle.ReLU, candle.NewRNG(1))
	if _, err := candle.Train(net, trainX, trainY, candle.TrainConfig{
		Loss: candle.SoftmaxCELoss{}, Optimizer: candle.NewAdam(0.003),
		BatchSize: 50, Epochs: 20, Shuffle: true, RNG: candle.NewRNG(2),
	}); err != nil {
		log.Fatal(err)
	}

	// Watch the rest of the stream: label frames, detect transitions.
	streamX := ds.X.SliceRows(cut, ds.N())
	truth := ds.Labels[cut:]
	pred := net.PredictClasses(streamX)

	correct := 0
	detected, actual, spurious := 0, 0, 0
	for i := range pred {
		if pred[i] == truth[i] {
			correct++
		}
		if i == 0 {
			continue
		}
		predJump := pred[i] != pred[i-1]
		trueJump := truth[i] != truth[i-1]
		if trueJump {
			actual++
			// Count as detected if the surrogate flags a jump within ±3
			// frames (thermal noise blurs exact boundaries).
			for d := -3; d <= 3; d++ {
				j := i + d
				if j > 0 && j < len(pred) && pred[j] != pred[j-1] {
					detected++
					break
				}
			}
		}
		if predJump && !trueJump {
			spurious++
		}
	}
	fmt.Printf("online frame labelling accuracy: %.3f\n",
		float64(correct)/float64(len(pred)))
	fmt.Printf("transition events: %d actual, %d detected within ±3 frames, %d spurious flags\n",
		actual, detected, spurious)
	fmt.Println("\neach detected transition is where a multi-resolution campaign")
	fmt.Println("would spawn a fine-grained MD run around the transition path")
}
