// HPC sweep: evaluates the architecture trade-offs the paper argues for on
// the machine model — precision speedups, strong-vs-weak scaling, and
// NVRAM staging — without training anything. This is the example to start
// from when using candle as an architecture-exploration tool.
package main

import (
	"fmt"

	"repro/candle"
	"repro/internal/comm"
	"repro/internal/lowp"
	"repro/internal/machine"
	"repro/internal/storage"
)

func main() {
	spec := machine.MLPSpec("candle-mlp", []int{4096, 2048, 2048, 1000})

	// 1. Precision ladders on each machine preset.
	fmt.Println("training-step time (ms) at batch 256 by precision:")
	fmt.Printf("%-10s", "machine")
	precs := []lowp.Precision{lowp.FP64, lowp.FP32, lowp.FP16, lowp.INT8}
	for _, p := range precs {
		fmt.Printf("  %8s", p)
	}
	fmt.Println()
	for _, m := range machine.Presets(1) {
		fmt.Printf("%-10s", m.Name)
		for _, p := range precs {
			fmt.Printf("  %8.3f", 1000*machine.StepComputeTime(m, spec, 256, p))
		}
		fmt.Println()
	}

	// 2. Strong scaling of data-parallel SGD.
	fmt.Println("\nstrong scaling (global batch 1024, fp32, ring allreduce):")
	m := candle.MachineGPU2017(1024)
	conv := machine.ModelSpec{Name: "convnet", Params: 5e6,
		FlopsPerSample: 4e9, ActivationsPerSample: 2e6, Layers: 12}
	t1 := machine.DataParallelStepTime(m, conv, 1, 1024, lowp.FP32, lowp.FP32, comm.ARRing)
	for _, p := range []int{1, 4, 16, 64, 256, 1024} {
		tp := machine.DataParallelStepTime(m, conv, p, 1024, lowp.FP32, lowp.FP32, comm.ARRing)
		fmt.Printf("  P=%-5d step %8.2f ms   speedup %7.1fx   efficiency %5.1f%%\n",
			p, tp*1000, t1/tp, 100*t1/tp/float64(p))
	}

	// 3. NVRAM staging for a dataset that exceeds DRAM.
	fmt.Println("\ndata staging for a 256 GB/node dataset (64 nodes sharing the PFS):")
	node := m.Node
	cfg := storage.Config{
		DatasetBytes: 256 * machine.GB, BatchBytes: 16 * machine.MB,
		StepsPerEpoch: 16384, Epochs: 4, ComputePerStep: 0.02,
		SharedPFSNodes: 64,
	}
	for _, res := range storage.CompareAll(&node, cfg) {
		fmt.Printf("  %v  efficiency %5.1f%%\n", res, 100*storage.Efficiency(res, cfg))
	}
}
