package candle_test

import (
	"testing"

	"repro/candle"
)

// TestPublicAPIEndToEnd exercises the README quick-start path through the
// public facade only.
func TestPublicAPIEndToEnd(t *testing.T) {
	w, err := candle.WorkloadByName("tumor")
	if err != nil {
		t.Fatal(err)
	}
	train, test := w.Generate(candle.Tiny, candle.NewRNG(1))
	net := w.NewModel(w.DefaultConfig(), train.Dim(), train.OutDim(), candle.NewRNG(2))
	_, err = candle.Train(net, train.X, train.Y, candle.TrainConfig{
		Loss: candle.SoftmaxCELoss{}, Optimizer: candle.NewAdam(0.003),
		BatchSize: 32, Epochs: 10, Shuffle: true, RNG: candle.NewRNG(3),
	})
	if err != nil {
		t.Fatal(err)
	}
	if acc := candle.EvaluateClassifier(net, test.X, test.Labels); acc < 0.5 {
		t.Fatalf("quick-start accuracy %.3f", acc)
	}
}

func TestPublicSearchAPI(t *testing.T) {
	w, err := candle.WorkloadByName("mdsurrogate")
	if err != nil {
		t.Fatal(err)
	}
	res, err := (candle.Hyperband{}).Search(w.Objective(candle.Tiny), candle.SearchOptions{
		Space: w.Space, TotalBudget: 4, Parallelism: 4, RNG: candle.NewRNG(7),
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Trials) == 0 {
		t.Fatal("no trials")
	}
}

func TestPublicParallelAPI(t *testing.T) {
	r := candle.NewRNG(5)
	x := candle.NewTensor(64, 8)
	x.FillRandNorm(r, 1)
	labels := make([]int, 64)
	for i := range labels {
		labels[i] = i % 2
	}
	y := candle.OneHot(labels, 2)
	net := candle.MLP(8, []int{16}, 2, candle.Tanh, r.Split("init"))
	_, err := candle.TrainDataParallel(net, x, y, candle.DataParallelConfig{
		Replicas: 4, Algo: candle.ARRing,
		Loss:         candle.SoftmaxCELoss{},
		NewOptimizer: func() candle.Optimizer { return candle.NewSGD(0.1) },
		GlobalBatch:  16, Epochs: 2, RNG: r.Split("train"),
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestPublicMachineAndStorage(t *testing.T) {
	m := candle.MachineGPU2017(64)
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	_, err := candle.SimulateStorage(&m.Node, candle.StoragePolicy(0), candle.StorageConfig{
		DatasetBytes: 1e9, BatchBytes: 1e6, StepsPerEpoch: 100, Epochs: 1,
		ComputePerStep: 0.001,
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestExperimentRegistry(t *testing.T) {
	if len(candle.Experiments()) != 18 {
		t.Fatal("experiment suite incomplete")
	}
	if candle.ExperimentByID("E1") == nil {
		t.Fatal("E1 missing")
	}
	if candle.ExperimentByID("E18") == nil {
		t.Fatal("E18 missing")
	}
}

func TestPublicServeAPI(t *testing.T) {
	net := candle.MLP(8, []int{16}, 2, candle.ReLU, candle.NewRNG(3))
	srv, err := candle.NewServer(net, candle.ServeConfig{InDim: 8, Replicas: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	y, err := srv.Infer(make([]float64, 8))
	if err != nil {
		t.Fatal(err)
	}
	if len(y) != 2 {
		t.Fatalf("got %d outputs, want 2", len(y))
	}
	rep, err := candle.RunServeLoad(candle.ServeLoadConfig{
		Requests: 500, RatePerSec: 1000, Replicas: 2, MaxBatch: 4, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Completed+rep.Shed+rep.Expired != 500 {
		t.Fatalf("load accounting does not balance: %+v", rep)
	}
}

func TestPublicFaultAPI(t *testing.T) {
	r := candle.NewRNG(6)
	x := candle.NewTensor(64, 8)
	x.FillRandNorm(r, 1)
	labels := make([]int, 64)
	for i := range labels {
		labels[i] = i % 2
	}
	y := candle.OneHot(labels, 2)
	net := candle.MLP(8, []int{16}, 2, candle.Tanh, r.Split("init"))
	res, err := candle.TrainElastic(net, x, y, candle.ElasticConfig{
		Workers: 3, Loss: candle.SoftmaxCELoss{},
		NewOptimizer: func() candle.Optimizer { return candle.NewSGD(0.1) },
		GlobalBatch:  16, Epochs: 3, RNG: r.Split("train"),
		Faults: candle.NewFaultPlan().Kill(1, 2),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Failures != 1 || res.LiveWorkers != 2 {
		t.Fatalf("kill not reflected in result: %+v", res)
	}
	if d := candle.DalyInterval(60, 3600); d <= 0 {
		t.Fatal("Daly interval not positive")
	}
}

// TestPublicDataPlaneAPI shards a workload through the public facade,
// streams it into Train via TrainConfig.Data, and checks the tier caches
// and virtual clock are reachable from outside.
func TestPublicDataPlaneAPI(t *testing.T) {
	w, err := candle.WorkloadByName("tumor")
	if err != nil {
		t.Fatal(err)
	}
	train, _ := w.Generate(candle.Tiny, candle.NewRNG(1))
	man, store, err := candle.BuildShards(train, candle.ShardBuildOptions{ShardSamples: 32})
	if err != nil {
		t.Fatal(err)
	}
	enc, err := man.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := candle.DecodeShardManifest(enc); err != nil {
		t.Fatal(err)
	}
	tiers, err := candle.TiersFromNode(&candle.MachineGPU2017(1).Node, 64)
	if err != nil {
		t.Fatal(err)
	}
	l, err := candle.NewLoader(man, store, candle.LoaderConfig{
		Batch: 16, Seed: 7, Prefetch: 2,
		NVRAMBytes: man.TotalBytes(), NVRAMPolicy: candle.NewLRU,
		Tiers: tiers, ComputePerBatch: 0.01,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	net := w.NewModel(w.DefaultConfig(), train.Dim(), train.OutDim(), candle.NewRNG(2))
	if _, err := candle.Train(net, nil, nil, candle.TrainConfig{
		Loss: candle.SoftmaxCELoss{}, Optimizer: candle.NewAdam(0.003), Epochs: 2, Data: l,
	}); err != nil {
		t.Fatal(err)
	}
	st, ok := l.LastEpoch()
	if !ok || st.Seconds <= 0 || st.Batches != l.BatchesPerEpoch() {
		t.Fatalf("loader epoch stats %+v not populated", st)
	}
	c := candle.NewTierCache("feature", 2, candle.NewDoorkeeperLRU(0))
	c.Put("k", nil, 1)
	if !c.Put("k", nil, 1) || !c.Contains("k") {
		t.Fatal("public doorkeeper cache rejected a repeat key")
	}
}
