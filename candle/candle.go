// Package candle is the public API of the repository: a deep-learning-for-
// biomedicine workload suite and the HPC substrates it runs on, reproducing
// "Deep Learning in Cancer and Infectious Disease: Novel Driver Problems
// for Future HPC Architecture" (Stevens, HPDC 2017).
//
// The package re-exports the stable surface of the internal packages:
//
//   - the six biomedical driver problems (Workloads) with deterministic
//     synthetic data generators, reference models, and HPO objectives;
//   - the neural-network stack (layers, losses, optimizers, Train);
//   - reduced-precision emulation (fp32/bf16/fp16/int8, loss scaling);
//   - parallel training regimes: data-parallel SGD over MPI-style
//     collectives, model-parallel pipelines, and the data x model hybrid;
//   - hyperparameter search: grid/random baselines and the intelligent
//     strategies (Hyperband, genetic, TPE, RBF surrogate, generative);
//   - the parameterised machine model (rooflines, collective costs,
//     energy) and the tiered-storage/NVRAM staging simulator;
//   - the inference serving subsystem (dynamic micro-batching, replica
//     pool, admission control) and its deterministic load simulator;
//   - the E1-E17 experiment suite that reproduces each of the paper's
//     architectural claims.
//
// Quick start:
//
//	w, _ := candle.WorkloadByName("tumor")
//	train, test := w.Generate(candle.Small, candle.NewRNG(1))
//	net := w.NewModel(w.DefaultConfig(), train.Dim(), train.OutDim(), candle.NewRNG(2))
//	candle.Train(net, train.X, train.Y, candle.TrainConfig{
//		Loss: candle.SoftmaxCELoss{}, Optimizer: candle.NewAdam(0.003),
//		BatchSize: 32, Epochs: 20,
//	})
//	fmt.Println(candle.EvaluateClassifier(net, test.X, test.Labels))
package candle

import (
	"repro/internal/biodata"
	"repro/internal/comm"
	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/experiments"
	"repro/internal/fault"
	"repro/internal/hpo"
	"repro/internal/lowp"
	"repro/internal/machine"
	"repro/internal/nn"
	"repro/internal/parallel"
	"repro/internal/rng"
	"repro/internal/serve"
	"repro/internal/storage"
	"repro/internal/tensor"
	"repro/internal/trace"
)

// ---- randomness ----------------------------------------------------------

// RNG is a deterministic, splittable random stream.
type RNG = rng.Stream

// NewRNG returns a stream seeded with the given value.
func NewRNG(seed uint64) *RNG { return rng.New(seed) }

// ---- tensors and networks --------------------------------------------------

// Tensor is a dense row-major float64 array.
type Tensor = tensor.Tensor

// NewTensor allocates a zero tensor with the given shape.
func NewTensor(shape ...int) *Tensor { return tensor.New(shape...) }

// F32 is a dense row-major float32 array, the storage type of the kernel
// backends (see internal/tensor's README for the registry and the
// precision contract).
type F32 = tensor.F32

// NewF32 allocates a zero float32 tensor with the given shape.
func NewF32(shape ...int) *F32 { return tensor.NewF32(shape...) }

// Float32 kernel backend registry: backends are selected by name and pinned
// process-wide; KernelBackends lists what is registered ("naive", "blocked",
// "packed").
var (
	KernelBackends   = tensor.BackendNames
	SetKernelBackend = tensor.SetBackend
)

// Net is an ordered layer stack trained end to end.
type Net = nn.Net

// Layer is one differentiable network stage.
type Layer = nn.Layer

// TrainConfig configures single-process training.
type TrainConfig = nn.TrainConfig

// TrainResult reports a training run.
type TrainResult = nn.TrainResult

// Losses.
type (
	// MSELoss is mean squared error.
	MSELoss = nn.MSELoss
	// MAELoss is mean absolute error.
	MAELoss = nn.MAELoss
	// SoftmaxCELoss is fused softmax cross-entropy over logits.
	SoftmaxCELoss = nn.SoftmaxCELoss
	// BCELoss is binary cross-entropy over a single logit.
	BCELoss = nn.BCELoss
)

// MLP constructs a dense network (see nn.MLP).
var MLP = nn.MLP

// NewDense, activations, and friends.
var (
	NewDense      = nn.NewDense
	NewActivation = nn.NewActivation
	NewDropout    = nn.NewDropout
	NewBatchNorm  = nn.NewBatchNorm
	NewLayerNorm  = nn.NewLayerNorm
	NewConv1D     = nn.NewConv1D
	NewMaxPool1D  = nn.NewMaxPool1D
	NewNet        = nn.NewNet
	OneHot        = nn.OneHot
)

// Activation kinds.
const (
	ReLU      = nn.ReLU
	LeakyReLU = nn.LeakyReLU
	Sigmoid   = nn.Sigmoid
	Tanh      = nn.Tanh
	GELU      = nn.GELU
)

// Optimizers.
var (
	NewSGD      = nn.NewSGD
	NewMomentum = nn.NewMomentum
	NewAdam     = nn.NewAdam
	NewAdamW    = nn.NewAdamW
	NewRMSProp  = nn.NewRMSProp
)

// Optimizer applies parameter updates.
type Optimizer = nn.Optimizer

// Train runs mini-batch training (see nn.Train).
var Train = nn.Train

// Evaluation helpers.
var (
	EvaluateClassifier = nn.EvaluateClassifier
	EvaluateRegression = nn.EvaluateRegression
)

// ---- precision --------------------------------------------------------------

// Precision is an emulated numeric format.
type Precision = lowp.Precision

// Supported precisions.
const (
	FP64 = lowp.FP64
	FP32 = lowp.FP32
	BF16 = lowp.BF16
	FP16 = lowp.FP16
	INT8 = lowp.INT8
)

// ---- driver problems ---------------------------------------------------------

// Workload is one biomedical driver problem.
type Workload = core.Workload

// Dataset is a generated problem instance.
type Dataset = biodata.Dataset

// Scale selects dataset sizing.
type Scale = core.Scale

// Dataset scales.
const (
	Tiny  = core.Tiny
	Small = core.Small
	Full  = core.Full
)

// Workloads returns the six driver problems.
var Workloads = core.Workloads

// WorkloadByName looks a workload up by name.
var WorkloadByName = core.ByName

// ---- hyperparameter search ----------------------------------------------------

// SearchSpace is a typed hyperparameter space.
type SearchSpace = hpo.Space

// SearchConfig is a concrete hyperparameter assignment.
type SearchConfig = hpo.Config

// SearchOptions configures a search run.
type SearchOptions = hpo.Options

// SearchResult reports a search run.
type SearchResult = hpo.Result

// SearchStrategy is a search algorithm.
type SearchStrategy = hpo.Strategy

// Search strategies.
type (
	// RandomSearch is the naive uniform baseline.
	RandomSearch = hpo.RandomSearch
	// GridSearch is the naive grid baseline.
	GridSearch = hpo.GridSearch
	// Hyperband allocates budget adaptively with successive halving.
	Hyperband = hpo.Hyperband
	// Genetic evolves a population of configurations.
	Genetic = hpo.Genetic
	// TPE is tree-structured-Parzen-estimator-style density search.
	TPE = hpo.TPE
	// Surrogate is RBF-surrogate-guided search.
	Surrogate = hpo.Surrogate
	// Generative samples candidates from a learned generative model of
	// the elite region — the paper's generative-search stand-in.
	Generative = hpo.Generative
)

// AllStrategies returns one of each strategy with defaults.
var AllStrategies = hpo.AllStrategies

// Learning searchers over the architecture DSL.
type (
	// RLController is a policy-gradient (REINFORCE) controller: seeded
	// categorical policies per decision, updated from eval rewards.
	RLController = hpo.RLController
	// PBT is population-based training: exploit/explore with checkpoint
	// inheritance through a TrainableObjective.
	PBT = hpo.PBT
	// TrainableObjective carries training state (an encoded nn.TrainState)
	// across PBT rounds so exploited members resume training.
	TrainableObjective = hpo.TrainableObjective
)

// LearningStrategies returns the learning searchers with defaults; they are
// kept out of AllStrategies so classic-strategy artifacts stay stable.
var LearningStrategies = hpo.LearningStrategies

// StrategyByName resolves any built-in or learning strategy by name.
var StrategyByName = hpo.StrategyByName

// Architecture DSL: slash-separated "units:act[:dropout]" layers, the
// vocabulary the learning searchers explore.
type (
	// Arch is a parsed architecture.
	Arch = hpo.Arch
	// ArchLayer is one hidden layer of the DSL.
	ArchLayer = hpo.ArchLayer
)

// Architecture DSL helpers.
var (
	// ParseArch parses and validates the DSL form.
	ParseArch = hpo.ParseArch
	// ArchSpace returns the DSL as a search space of categorical decisions.
	ArchSpace = hpo.ArchSpace
	// ArchFromConfig decodes an ArchSpace configuration.
	ArchFromConfig = hpo.ArchFromConfig
	// ConfigFromArch encodes an architecture as an ArchSpace configuration.
	ConfigFromArch = hpo.ConfigFromArch
)

// ---- campaign fleet ---------------------------------------------------------

// CampaignConfig configures a single-tenant search campaign on the modelled
// machine (see RunCampaign).
type CampaignConfig = core.CampaignConfig

// CampaignResult reports a campaign run.
type CampaignResult = core.CampaignResult

// RunCampaign simulates one search campaign on the modelled machine.
var RunCampaign = core.RunCampaign

// FleetConfig configures the sharded multi-tenant fleet scheduler:
// concurrent campaigns with fair-share weights, priority preemption, and
// work stealing across modelled node shards (see RunFleet).
type FleetConfig = core.FleetConfig

// TenantConfig is one campaign tenant submitted to the fleet.
type TenantConfig = core.TenantConfig

// FleetResult reports a fleet run with per-tenant and per-shard stats.
type FleetResult = core.FleetResult

// RunFleet simulates concurrent campaigns on the sharded fleet.
var RunFleet = core.RunFleet

// ShardPlan scripts deterministic shard outages, gray degradation, and
// repairs for the fleet scheduler (see FleetConfig.Faults).
type ShardPlan = fault.ShardPlan

// RandomShardPlan draws a seeded shard fault plan.
var RandomShardPlan = fault.RandomShardPlan

// ---- parallel training -----------------------------------------------------------

// DataParallelConfig configures synchronous data-parallel SGD.
type DataParallelConfig = parallel.DataParallelConfig

// PipelineConfig configures model-parallel pipeline training.
type PipelineConfig = parallel.PipelineConfig

// HybridConfig configures data x model hybrid training.
type HybridConfig = parallel.HybridConfig

// ElasticConfig configures elastic data-parallel SGD: synchronous training
// that survives worker deaths by re-sharding the batch over survivors.
type ElasticConfig = parallel.ElasticConfig

// Parallel trainers.
var (
	TrainDataParallel = parallel.TrainDataParallel
	TrainPipeline     = parallel.TrainPipeline
	TrainHybrid       = parallel.TrainHybrid
	TrainElastic      = parallel.TrainElastic
)

// Allreduce algorithms for gradient reduction.
const (
	ARRing              = comm.ARRing
	ARRecursiveDoubling = comm.ARRecursiveDoubling
	ARTree              = comm.ARTree
	ARRabenseifner      = comm.ARRabenseifner
)

// BucketReducer runs bucketed collectives asynchronously on a per-rank comm
// goroutine so gradient communication overlaps backward compute
// (see DataParallelConfig.BucketElems / Overlap).
type BucketReducer = comm.BucketReducer

// BucketHandle is the per-bucket completion handle a BucketReducer returns.
type BucketHandle = comm.BucketHandle

// CompressKind selects the gradient wire encoding for bucketed allreduce.
type CompressKind = lowp.CompressKind

// Gradient compression schemes (see DataParallelConfig.Compress).
const (
	CompressNone = lowp.CompressNone
	CompressTopK = lowp.CompressTopK
	CompressInt8 = lowp.CompressInt8
)

// GradCompressor is the error-feedback gradient codec: what a compressed
// bucket drops this step is carried in a residual and re-injected next step,
// conserving gradient mass exactly.
type GradCompressor = lowp.GradCompressor

// NewGradCompressor returns an error-feedback compressor of the given kind.
var NewGradCompressor = lowp.NewGradCompressor

// ---- fault tolerance --------------------------------------------------------------

// FaultPlan scripts deterministic worker kills, stalls, and transient
// collective errors for the trainers (see ElasticConfig.Faults).
type FaultPlan = fault.Plan

// FaultProcess describes independent per-node failure processes
// (see the campaign scheduler's Faults field).
type FaultProcess = fault.Process

// NewFaultPlan returns an empty failure plan.
var NewFaultPlan = fault.NewPlan

// DalyInterval is the first-order optimal checkpoint interval
// sqrt(2*C*MTBF) - C that experiment E10 sweeps.
var DalyInterval = fault.DalyInterval

// LinkFault describes seeded gray-failure rates for a communication link:
// message drop, duplication, corruption, and delay
// (see CommWorld.SetLinkFaults).
type LinkFault = fault.LinkFault

// CommWorld is a simulated communicator over in-process ranks; with
// SetLinkFaults its point-to-point links become a lossy fabric that the
// CRC-framed transport survives, with retransmit overhead in CommStats.
type CommWorld = comm.World

// NewCommWorld creates a communicator of the given size.
var NewCommWorld = comm.NewWorld

// CommStats reports per-rank traffic and fault-recovery counters.
type CommStats = comm.Stats

// ---- machine model and storage -----------------------------------------------------

// Machine is a parameterised cluster model.
type Machine = machine.Machine

// Machine presets.
var (
	MachineCPU2017   = machine.CPU2017
	MachineGPU2017   = machine.GPU2017
	MachineFutureDNN = machine.FutureDNN
)

// StoragePolicy is a training-data staging strategy.
type StoragePolicy = storage.Policy

// StorageConfig describes a run's data demands.
type StorageConfig = storage.Config

// SimulateStorage runs the staging timeline simulator.
var SimulateStorage = storage.Simulate

// ---- streaming data plane ----------------------------------------------------

// ShardManifest names, sizes, and checksums the shards of a dataset
// (see internal/data's README for the wire format and tier semantics).
type ShardManifest = data.Manifest

// Shard is one named, checksummed sample range of a manifest.
type Shard = data.Shard

// ShardStore holds the authoritative (PFS-resident) shard payloads.
type ShardStore = data.Store

// BuildShards tiles a dataset into a manifest plus its payload store.
var BuildShards = data.Build

// ShardBuildOptions sizes the shards and their logical bytes.
type ShardBuildOptions = data.BuildOptions

// DecodeShardManifest decodes a CRC-framed manifest (never panics on
// arbitrary bytes; see FuzzShardManifest).
var DecodeShardManifest = data.DecodeManifest

// Loader streams seed-deterministic training batches from a shard store
// through tiered DRAM/NVRAM caches with prefetch, pricing every read on a
// virtual clock. It plugs into TrainConfig.Data.
type Loader = data.Loader

// LoaderConfig configures a streaming loader.
type LoaderConfig = data.LoaderConfig

// NewLoader builds a loader over every shard of a manifest.
var NewLoader = data.NewLoader

// LoaderEpochStats is the virtual-clock account of one consumed epoch.
type LoaderEpochStats = data.EpochStats

// TierSpec prices loader reads against a DRAM/NVRAM/PFS hierarchy.
type TierSpec = data.TierSpec

// TiersFromNode extracts a TierSpec from a machine node, derating the PFS
// by the number of nodes sharing it.
var TiersFromNode = data.TiersFromNode

// ShardPartition assigns disjoint shard subsets to data-parallel ranks; it
// plugs into DataParallelConfig.Data.
type ShardPartition = data.Partition

// NewShardPartition round-robins a manifest's shards over ranks.
var NewShardPartition = data.NewPartition

// TierCache is a capacity-bounded byte cache with a pluggable eviction
// policy, reusable beyond the loader (e.g. a serving feature cache).
type TierCache = data.Cache

// NewTierCache builds a cache with the given policy (nil means LRU).
var NewTierCache = data.NewCache

// Eviction policies for TierCache.
var (
	NewLRU           = data.NewLRU
	NewDoorkeeperLRU = data.NewDoorkeeperLRU
)

// ---- experiments ------------------------------------------------------------------

// Experiment is one paper-claim reproduction (E1-E17).
type Experiment = experiments.Experiment

// ExperimentConfig sizes an experiment run.
type ExperimentConfig = experiments.Config

// Experiments returns the full E1-E17 suite.
var Experiments = experiments.All

// ExperimentByID finds one experiment.
var ExperimentByID = experiments.ByID

// Table is an aligned-text result table.
type Table = trace.Table

// ---- extension layers and schedules ------------------------------------------

// 2-D convolution stack (the histology imaging workload's layers).
var (
	NewConv2D    = nn.NewConv2D
	NewMaxPool2D = nn.NewMaxPool2D
)

// LRSchedule scales the learning rate per epoch during Train.
type LRSchedule = nn.LRSchedule

// Learning-rate schedules.
type (
	// ConstantLR keeps the base rate.
	ConstantLR = nn.ConstantLR
	// StepDecay multiplies the rate by Gamma every StepEpochs.
	StepDecay = nn.StepDecay
	// CosineDecay anneals the rate to MinFactor over the run.
	CosineDecay = nn.CosineDecay
	// WarmupCosine ramps up linearly, then cosine-anneals (the large-batch
	// recipe data parallelism requires).
	WarmupCosine = nn.WarmupCosine
)

// EarlyStopper signals when validation loss stops improving.
type EarlyStopper = nn.EarlyStopper

// WorkloadExtensions returns the workloads beyond the paper's six core
// drivers: "tumor-hard" and "histology".
var WorkloadExtensions = core.Extensions

// Ablations returns the design-choice ablation studies (A1-A3).
var Ablations = experiments.Ablations

// ---- inference serving ---------------------------------------------------------

// ServeConfig configures an inference Server: replica count, micro-batching
// policy (MaxBatch/MaxLinger), and admission control (QueueCap,
// MaxPendingBatches).
type ServeConfig = serve.Config

// Server is a dynamic micro-batching inference server over model replicas.
type Server = serve.Server

// NewServer starts a server for the given model.
var NewServer = serve.New

// Typed serving errors: load shedding and deadline misses are expected
// outcomes under overload, not failures.
var (
	ErrOverloaded = serve.ErrOverloaded
	ErrDeadline   = serve.ErrDeadline
)

// ServeLoadConfig describes a load-test profile (open or closed loop).
type ServeLoadConfig = serve.LoadConfig

// ServeLoadReport is a load-test result (the BENCH_serve.json schema).
type ServeLoadReport = serve.LoadReport

// RunServeLoad runs the deterministic discrete-event load simulator: same
// seed, bit-identical report.
var RunServeLoad = serve.RunLoad

// RunServeLive replays a load profile against a real concurrent Server.
var RunServeLive = serve.RunLive

// HedgeConfig enables tail-tolerant hedged requests: a request still
// unserved after the budget elapses is duplicated to another replica and
// the first result wins (see ServeConfig.Hedge).
type HedgeConfig = serve.HedgeConfig

// HealthConfig enables replica health scoring with ejection and
// re-admission of gray-degraded replicas (see ServeConfig.Health).
type HealthConfig = serve.HealthConfig

// RetryPolicy bounds client retries with a token-bucket retry budget so
// shed load cannot become a retry storm.
type RetryPolicy = serve.RetryPolicy

// Retrier retries Submit under a RetryPolicy.
type Retrier = serve.Retrier

// NewRetrier wraps a server in a budgeted retrier.
var NewRetrier = serve.NewRetrier

// RolloutConfig configures a versioned model deployment: shadow phase,
// staged canary traffic splits, per-version burn-rate SLO rules, and the
// drain bound on rollback (see Server.Deploy).
type RolloutConfig = serve.RolloutConfig

// RolloutStage is one canary step: a live-traffic fraction held for a
// duration before advancing.
type RolloutStage = serve.RolloutStage

// Rollout is the state machine of one deployment: shadowing, canarying,
// and either promoted or rolled back on SLO breach.
type Rollout = serve.Rollout

// AutoscaleConfig configures health-driven fleet sizing from queue depth,
// recent p99, and replica health, with hysteresis and a surge cap (see
// ServeConfig.Autoscale).
type AutoscaleConfig = serve.AutoscaleConfig

// Autoscaler is the pure scaling decision state machine.
type Autoscaler = serve.Autoscaler

// NewAutoscaler validates a config into an Autoscaler.
var NewAutoscaler = serve.NewAutoscaler

// ResultCacheConfig puts a TTL'd doorkeeper-LRU in front of the batcher:
// a fresh hit settles at admission without occupying a replica (see
// ServeConfig.Cache).
type ResultCacheConfig = serve.ResultCacheConfig

// ---- asynchronous training and strategy comparison -----------------------------

// AsyncConfig configures downpour-style asynchronous parameter-server
// training.
type AsyncConfig = parallel.AsyncConfig

// TrainAsync trains with asynchronous workers against a parameter server.
var TrainAsync = parallel.TrainAsync

// CompareStrategies runs several search strategies over multiple seeds and
// aggregates mean/std best losses and per-seed wins.
var CompareStrategies = hpo.Compare

// ComparisonRow is one strategy's multi-seed summary.
type ComparisonRow = hpo.ComparisonRow
