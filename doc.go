// Package repro reproduces "Deep Learning in Cancer and Infectious Disease:
// Novel Driver Problems for Future HPC Architecture" (Stevens, HPDC 2017).
//
// The public API lives in repro/candle; executables in cmd/; runnable
// examples in examples/. bench_test.go in this directory regenerates each
// of the paper-claim experiments E1-E10 (see DESIGN.md and EXPERIMENTS.md).
package repro
