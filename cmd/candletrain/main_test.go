package main

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// buildCandletrain compiles the command once into a temp dir.
func buildCandletrain(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "candletrain")
	out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput()
	if err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	return bin
}

func runCandletrain(t *testing.T, bin string, args ...string) string {
	t.Helper()
	out, err := exec.Command(bin, args...).CombinedOutput()
	if err != nil {
		t.Fatalf("candletrain %v: %v\n%s", args, err, out)
	}
	return string(out)
}

// lineWith returns the first output line containing the marker.
func lineWith(t *testing.T, out, marker string) string {
	t.Helper()
	for _, l := range strings.Split(out, "\n") {
		if strings.Contains(l, marker) {
			return l
		}
	}
	t.Fatalf("no %q line in output:\n%s", marker, out)
	return ""
}

// TestCheckpointResumeMatchesUninterrupted is the end-to-end guarantee
// behind -checkpoint/-resume: train 8 epochs straight through; then train 4
// epochs with checkpointing, and resume the final checkpoint for the
// remaining 4. The resumed run must report the identical step count, final
// loss, and test metric — the checkpoint carries the full training state,
// so interruption is invisible.
func TestCheckpointResumeMatchesUninterrupted(t *testing.T) {
	bin := buildCandletrain(t)
	ck := filepath.Join(t.TempDir(), "ck.bin")
	base := []string{"-workload", "tumor", "-scale", "tiny", "-batch", "16", "-seed", "3"}

	full := runCandletrain(t, bin, append([]string{"-epochs", "8"}, base...)...)

	interrupted := runCandletrain(t, bin,
		append([]string{"-epochs", "4", "-checkpoint", ck, "-checkpoint-every", "2"}, base...)...)
	if !strings.Contains(interrupted, "2 checkpoints") {
		t.Fatalf("expected 2 checkpoints in 4 epochs:\n%s", interrupted)
	}

	resumed := runCandletrain(t, bin, append([]string{"-epochs", "8", "-resume", ck}, base...)...)

	for _, marker := range []string{"trained:", "test:"} {
		want := lineWith(t, full, marker)
		got := lineWith(t, resumed, marker)
		if got != want {
			t.Fatalf("resumed run diverged from uninterrupted run:\n  full:    %s\n  resumed: %s", want, got)
		}
	}
}

// A corrupted checkpoint must be rejected, not silently half-loaded.
func TestResumeRejectsCorruptedCheckpoint(t *testing.T) {
	bin := buildCandletrain(t)
	dir := t.TempDir()
	ck := filepath.Join(dir, "ck.bin")
	base := []string{"-workload", "tumor", "-scale", "tiny", "-batch", "16", "-seed", "3"}
	runCandletrain(t, bin, append([]string{"-epochs", "2", "-checkpoint", ck}, base...)...)

	blob, err := os.ReadFile(ck)
	if err != nil {
		t.Fatal(err)
	}
	blob[len(blob)/2] ^= 0xff // flip a payload byte: CRC must catch it
	bad := filepath.Join(dir, "bad.bin")
	if err := os.WriteFile(bad, blob, 0o644); err != nil {
		t.Fatal(err)
	}
	out, err := exec.Command(bin, append([]string{"-epochs", "4", "-resume", bad}, base...)...).CombinedOutput()
	if err == nil {
		t.Fatalf("corrupted checkpoint accepted:\n%s", out)
	}
	if !strings.Contains(string(out), "train state") {
		t.Fatalf("unhelpful error for corrupted checkpoint:\n%s", out)
	}
}
