// Command candletrain trains one of the six driver problems and reports
// train/test metrics, optionally with data-parallel replicas or a
// model-parallel pipeline.
//
// Usage:
//
//	candletrain -workload tumor [-scale small] [-epochs 20] [-batch 32]
//	            [-lr 0.003] [-replicas 4 | -stages 3] [-precision fp32]
//	            [-seed 1] [-metrics m.jsonl] [-trace t.json]
//	            [-checkpoint ck.bin [-checkpoint-every 5]] [-resume ck.bin]
//
// -metrics streams per-epoch losses and final counter/timer histograms as
// JSON lines; -trace writes a chrome://tracing-loadable span trace of the
// whole run (forward/backward/optimizer per step, allreduce per rank when
// -replicas > 1).
//
// -checkpoint periodically snapshots the full training state (weights,
// optimizer moments, LR-schedule position, shuffle RNG cursor) to a file;
// -resume restores such a snapshot and continues training bitwise identical
// to the run that was interrupted — same final loss, same test metric.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"repro/internal/comm"
	"repro/internal/core"
	"repro/internal/lowp"
	"repro/internal/nn"
	"repro/internal/obs"
	"repro/internal/parallel"
	"repro/internal/rng"
)

func main() {
	workload := flag.String("workload", "tumor", "driver problem: tumor, drugresponse, expression-ae, medrecords, amr, mdsurrogate")
	scaleFlag := flag.String("scale", "small", "dataset scale: tiny, small, full")
	epochs := flag.Int("epochs", 20, "training epochs")
	batch := flag.Int("batch", 32, "global batch size")
	lr := flag.Float64("lr", 0.003, "learning rate")
	replicas := flag.Int("replicas", 1, "data-parallel replicas (goroutines)")
	stages := flag.Int("stages", 1, "model-parallel pipeline stages (goroutines)")
	precision := flag.String("precision", "fp64", "emulated precision: fp64, fp32, bf16, fp16, int8")
	lossScale := flag.Bool("lossscale", false, "enable dynamic loss scaling (for fp16)")
	schedule := flag.String("schedule", "constant", "LR schedule: constant, step, cosine, warmup-cosine")
	seed := flag.Uint64("seed", 1, "seed")
	metricsOut := flag.String("metrics", "", "write metrics (per-epoch loss, step-timer histograms) as JSONL to this file")
	omOut := flag.String("metrics-out", "", "write counters/gauges/histograms in OpenMetrics (Prometheus) text format to this file")
	traceOut := flag.String("trace", "", "write a chrome://tracing span trace (JSON) to this file")
	ckptPath := flag.String("checkpoint", "", "write periodic training-state checkpoints to this file (serial training only)")
	ckptEvery := flag.Int("checkpoint-every", 1, "epochs between checkpoints (with -checkpoint)")
	resumePath := flag.String("resume", "", "resume from a checkpoint file written by -checkpoint; continues bitwise identical to the uninterrupted run")
	flag.Parse()

	var sess *obs.Session
	if *metricsOut != "" || *omOut != "" || *traceOut != "" {
		sess = obs.NewSession()
	}

	w, err := core.ByName(*workload)
	if err != nil {
		fail(err)
	}
	var scale core.Scale
	switch *scaleFlag {
	case "tiny":
		scale = core.Tiny
	case "small":
		scale = core.Small
	case "full":
		scale = core.Full
	default:
		fail(fmt.Errorf("unknown scale %q", *scaleFlag))
	}
	prec, err := lowp.ParsePrecision(*precision)
	if err != nil {
		fail(err)
	}
	if *replicas > 1 && *stages > 1 {
		fail(fmt.Errorf("use candlesearch/TrainHybrid for replicas x stages; pick one here"))
	}
	if (*ckptPath != "" || *resumePath != "") && (*replicas > 1 || *stages > 1) {
		fail(fmt.Errorf("-checkpoint/-resume only apply to serial training (replicas=1, stages=1)"))
	}
	var sched nn.LRSchedule
	switch *schedule {
	case "constant":
		sched = nn.ConstantLR{}
	case "step":
		sched = nn.StepDecay{StepEpochs: *epochs / 3, Gamma: 0.1}
	case "cosine":
		sched = nn.CosineDecay{MinFactor: 0.01}
	case "warmup-cosine":
		sched = nn.WarmupCosine{WarmupEpochs: *epochs / 10, MinFactor: 0.01}
	default:
		fail(fmt.Errorf("unknown schedule %q", *schedule))
	}

	root := rng.New(*seed)
	train, test := w.Generate(scale, root.Split("data"))
	fmt.Printf("workload: %s — %s\n", w.Name, w.Description)
	fmt.Printf("data:     %v / test %d samples\n", train, test.N())

	hp := w.DefaultConfig()
	hp["lr"] = *lr
	net := w.NewModel(hp, train.Dim(), train.OutDim(), root.Split("init"))
	fmt.Printf("model:    %v\n", net)

	var loss nn.Loss = nn.MSELoss{}
	if w.Classification {
		loss = nn.SoftmaxCELoss{}
	}

	start := time.Now()
	switch {
	case *replicas > 1:
		res, err := parallel.TrainDataParallel(net, train.X, train.Y, parallel.DataParallelConfig{
			Replicas: *replicas, Algo: comm.ARRing, Loss: loss,
			NewOptimizer: func() nn.Optimizer { return nn.NewAdam(*lr) },
			GlobalBatch:  *batch, Epochs: *epochs,
			GradPrecision: prec, RNG: root.Split("train"),
			Obs: sess,
		})
		if err != nil {
			fail(err)
		}
		fmt.Printf("trained:  %d steps on %d replicas, %.1f MB gradient traffic/rank\n",
			res.Steps, *replicas, res.BytesPerRank/1e6)
		fmt.Printf("balance:  worker busy max/min %.3f\n", res.BusyImbalance)
	case *stages > 1:
		res, err := parallel.TrainPipeline(net, train.X, train.Y, parallel.PipelineConfig{
			Stages: *stages, MicroBatches: 2, Loss: loss,
			NewOptimizer: func() nn.Optimizer { return nn.NewAdam(*lr) },
			GlobalBatch:  *batch, Epochs: *epochs, RNG: root.Split("train"),
			Obs: sess,
		})
		if err != nil {
			fail(err)
		}
		fmt.Printf("trained:  %d steps on %d stages (params/stage %v)\n",
			res.Steps, *stages, res.StageParams)
		fmt.Printf("balance:  stage busy max/min %.3f\n", res.BusyImbalance)
	default:
		cfg := nn.TrainConfig{
			Loss: loss, Optimizer: nn.NewAdam(*lr),
			BatchSize: *batch, Epochs: *epochs,
			Precision: prec, LossScale: *lossScale, Schedule: sched,
			Shuffle: true, RNG: root.Split("train"),
			Obs: sess,
		}
		checkpoints := 0
		if *ckptPath != "" {
			cfg.CheckpointEvery = *ckptEvery
			cfg.Checkpoint = func(epoch int, state []byte) error {
				// Write-then-rename so a crash mid-write never corrupts the
				// previous good checkpoint.
				tmp := *ckptPath + ".tmp"
				if err := os.WriteFile(tmp, state, 0o644); err != nil {
					return err
				}
				if err := os.Rename(tmp, *ckptPath); err != nil {
					return err
				}
				checkpoints++
				return nil
			}
		}
		if *resumePath != "" {
			blob, err := os.ReadFile(*resumePath)
			if err != nil {
				fail(err)
			}
			cfg.Resume = blob
		}
		res, err := nn.Train(net, train.X, train.Y, cfg)
		if err != nil {
			fail(err)
		}
		if *resumePath != "" {
			fmt.Printf("resumed:  %s\n", *resumePath)
		}
		fmt.Printf("trained:  %d steps (%d skipped), final loss %.4f\n",
			res.Steps, res.SkippedSteps, res.FinalLoss)
		if checkpoints > 0 {
			fmt.Printf("ckpt:     %d checkpoints -> %s\n", checkpoints, *ckptPath)
		}
	}
	fmt.Printf("time:     %.2fs\n", time.Since(start).Seconds())

	if w.Classification {
		acc := nn.EvaluateClassifier(net, test.X, test.Labels)
		sess.OnEval("test.accuracy", acc)
		fmt.Printf("test:     accuracy %.4f\n", acc)
	} else {
		mse := nn.EvaluateRegression(net, test.X, test.Y)
		sess.OnEval("test.mse", mse)
		fmt.Printf("test:     MSE %.6f\n", mse)
	}

	if *metricsOut != "" {
		writeTo(*metricsOut, sess.WriteMetricsJSONL)
		fmt.Printf("metrics:  %s\n", *metricsOut)
	}
	if *omOut != "" {
		writeTo(*omOut, sess.WriteOpenMetrics)
		fmt.Printf("metrics:  %s (OpenMetrics)\n", *omOut)
	}
	if *traceOut != "" {
		writeTo(*traceOut, sess.WriteChromeTrace)
		fmt.Printf("trace:    %s (%d spans; open in chrome://tracing or ui.perfetto.dev)\n",
			*traceOut, sess.Tracer.NumEvents())
	}
}

// writeTo writes via fn into path, failing the command on any error.
func writeTo(path string, fn func(w io.Writer) error) {
	f, err := os.Create(path)
	if err != nil {
		fail(err)
	}
	if err := fn(f); err != nil {
		fail(err)
	}
	if err := f.Close(); err != nil {
		fail(err)
	}
}

func fail(err error) {
	fmt.Fprintf(os.Stderr, "candletrain: %v\n", err)
	os.Exit(1)
}
