// Command candlesearch runs a hyperparameter search campaign on one of the
// driver problems, with a selectable strategy and parallel evaluation pool.
//
// Usage:
//
//	candlesearch -workload tumor -strategy hyperband [-budget 24]
//	             [-parallel 4] [-scale tiny] [-seed 1]
//	             [-metrics m.jsonl] [-trace t.json]
//
// -trace writes a chrome://tracing span trace with one span per trial
// (tid 1000+worker); -metrics dumps trial counters and timer histograms
// as JSON lines.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/hpo"
	"repro/internal/obs"
	"repro/internal/rng"
)

func main() {
	workload := flag.String("workload", "tumor", "driver problem name")
	strategy := flag.String("strategy", "hyperband",
		"search strategy: random, grid, hyperband, genetic, tpe, surrogate, generative, rl, pbt")
	budget := flag.Float64("budget", 24, "search budget in full-training equivalents")
	par := flag.Int("parallel", 4, "evaluation worker pool size")
	scaleFlag := flag.String("scale", "tiny", "dataset scale: tiny, small, full")
	seed := flag.Uint64("seed", 1, "seed")
	metricsOut := flag.String("metrics", "", "write trial counters/timer histograms as JSONL to this file")
	traceOut := flag.String("trace", "", "write a chrome://tracing span trace (JSON) to this file")
	flag.Parse()

	var sess *obs.Session
	if *metricsOut != "" || *traceOut != "" {
		sess = obs.NewSession()
	}

	w, err := core.ByName(*workload)
	if err != nil {
		fail(err)
	}
	var scale core.Scale
	switch *scaleFlag {
	case "tiny":
		scale = core.Tiny
	case "small":
		scale = core.Small
	case "full":
		scale = core.Full
	default:
		fail(fmt.Errorf("unknown scale %q", *scaleFlag))
	}
	strat, ok := hpo.StrategyByName(*strategy)
	if !ok {
		fail(fmt.Errorf("unknown strategy %q", *strategy))
	}

	fmt.Printf("searching %s with %s (budget %.0f, %d workers)\n",
		w.Name, strat.Name(), *budget, *par)
	start := time.Now()
	res, err := strat.Search(w.Objective(scale), hpo.Options{
		Space: w.Space, TotalBudget: *budget, Parallelism: *par,
		RNG: rng.New(*seed), Obs: sess,
	})
	if err != nil {
		fail(err)
	}
	fmt.Printf("done in %.1fs: %d trials, %.1f budget used\n",
		time.Since(start).Seconds(), len(res.Trials), res.CostUsed)
	fmt.Printf("best loss: %.4f\n", res.Best.Loss)
	fmt.Printf("best config: %s\n", w.Space.FormatConfig(res.Best.Config))
	fmt.Println("\nbest-so-far curve (cost, best):")
	// Print at most 12 evenly spaced progress points.
	stride := len(res.Progress)/12 + 1
	for i := 0; i < len(res.Progress); i += stride {
		p := res.Progress[i]
		fmt.Printf("  %6.1f  %.4f\n", p.Cost, p.Best)
	}

	if *metricsOut != "" {
		writeTo(*metricsOut, sess.WriteMetricsJSONL)
		fmt.Printf("metrics: %s\n", *metricsOut)
	}
	if *traceOut != "" {
		writeTo(*traceOut, sess.WriteChromeTrace)
		fmt.Printf("trace:   %s (%d spans; open in chrome://tracing or ui.perfetto.dev)\n",
			*traceOut, sess.Tracer.NumEvents())
	}
}

// writeTo writes via fn into path, exiting the command on any error.
func writeTo(path string, fn func(w io.Writer) error) {
	f, err := os.Create(path)
	if err != nil {
		fail(err)
	}
	if err := fn(f); err != nil {
		fail(err)
	}
	if err := f.Close(); err != nil {
		fail(err)
	}
}

func fail(err error) {
	fmt.Fprintf(os.Stderr, "candlesearch: %v\n", err)
	os.Exit(1)
}
