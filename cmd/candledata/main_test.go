package main

import (
	"bytes"
	"encoding/csv"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

func buildCandledata(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "candledata")
	out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput()
	if err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	return bin
}

func runCandledata(t *testing.T, bin string, args ...string) []byte {
	t.Helper()
	out, err := exec.Command(bin, args...).CombinedOutput()
	if err != nil {
		t.Fatalf("candledata %v: %v\n%s", args, err, out)
	}
	return out
}

// TestCSVStructure checks the emitted CSV: a header naming every feature
// column plus the label, a split tag on each row, and rectangular records
// (csv.Reader enforces per-record field counts against the header).
func TestCSVStructure(t *testing.T) {
	bin := buildCandledata(t)
	out := runCandledata(t, bin, "-workload", "tumor", "-scale", "tiny", "-seed", "5")
	rows, err := csv.NewReader(bytes.NewReader(out)).ReadAll()
	if err != nil {
		t.Fatalf("output is not rectangular CSV: %v", err)
	}
	if len(rows) < 3 {
		t.Fatalf("only %d rows", len(rows))
	}
	header := rows[0]
	if header[0] != "split" || header[1] != "f0" || header[len(header)-1] != "label" {
		t.Fatalf("unexpected header %v", header)
	}
	train, test := 0, 0
	for _, r := range rows[1:] {
		switch r[0] {
		case "train":
			train++
		case "test":
			test++
		default:
			t.Fatalf("row tagged %q, want train or test", r[0])
		}
	}
	if train == 0 || test == 0 {
		t.Fatalf("missing a split: %d train, %d test rows", train, test)
	}
	if train <= test {
		t.Fatalf("train split (%d) should dominate test (%d)", train, test)
	}
}

// TestRegressionTargetsColumns: regression workloads emit y columns, not a
// label column.
func TestRegressionTargetColumns(t *testing.T) {
	bin := buildCandledata(t)
	out := runCandledata(t, bin, "-workload", "drugresponse", "-scale", "tiny", "-head", "3")
	rows, err := csv.NewReader(bytes.NewReader(out)).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	last := rows[0][len(rows[0])-1]
	if !strings.HasPrefix(last, "y") {
		t.Fatalf("regression header ends with %q, want a y column", last)
	}
}

// TestSeedDeterminism: equal seeds must reproduce the file byte-for-byte;
// different seeds must not.
func TestSeedDeterminism(t *testing.T) {
	bin := buildCandledata(t)
	dir := t.TempDir()
	p1, p2, p3 := filepath.Join(dir, "a.csv"), filepath.Join(dir, "b.csv"), filepath.Join(dir, "c.csv")
	runCandledata(t, bin, "-workload", "amr", "-scale", "tiny", "-seed", "7", "-out", p1)
	runCandledata(t, bin, "-workload", "amr", "-scale", "tiny", "-seed", "7", "-out", p2)
	runCandledata(t, bin, "-workload", "amr", "-scale", "tiny", "-seed", "8", "-out", p3)
	b1, _ := os.ReadFile(p1)
	b2, _ := os.ReadFile(p2)
	b3, _ := os.ReadFile(p3)
	if !bytes.Equal(b1, b2) {
		t.Fatal("equal seeds produced different CSVs")
	}
	if bytes.Equal(b1, b3) {
		t.Fatal("different seeds produced identical CSVs")
	}
}

// TestHeadLimitsRows: -head N caps each split at N data rows.
func TestHeadLimitsRows(t *testing.T) {
	bin := buildCandledata(t)
	out := runCandledata(t, bin, "-workload", "tumor", "-scale", "tiny", "-head", "4")
	rows, err := csv.NewReader(bytes.NewReader(out)).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1+4+4 {
		t.Fatalf("got %d rows, want header + 4 train + 4 test", len(rows))
	}
}

func TestRejectsUnknownWorkloadAndScale(t *testing.T) {
	bin := buildCandledata(t)
	if out, err := exec.Command(bin, "-workload", "nope").CombinedOutput(); err == nil {
		t.Fatalf("accepted unknown workload:\n%s", out)
	}
	if out, err := exec.Command(bin, "-workload", "tumor", "-scale", "galactic").CombinedOutput(); err == nil {
		t.Fatalf("accepted unknown scale:\n%s", out)
	}
}
