// Command candledata generates any driver-problem dataset and writes it as
// CSV (features then label/target columns) for inspection or use outside
// this repository.
//
// Usage:
//
//	candledata -workload amr -scale tiny -seed 1 -out amr.csv
//	candledata -workload tumor -head 5          # preview to stdout
package main

import (
	"encoding/csv"
	"flag"
	"fmt"
	"os"
	"strconv"

	"repro/internal/biodata"
	"repro/internal/core"
	"repro/internal/rng"
)

func main() {
	workload := flag.String("workload", "tumor", "driver problem name")
	scaleFlag := flag.String("scale", "tiny", "dataset scale: tiny, small, full")
	seed := flag.Uint64("seed", 1, "seed")
	out := flag.String("out", "", "output CSV path (default stdout)")
	head := flag.Int("head", 0, "write only the first N rows (0 = all)")
	flag.Parse()

	w, err := core.ByName(*workload)
	if err != nil {
		fail(err)
	}
	var scale core.Scale
	switch *scaleFlag {
	case "tiny":
		scale = core.Tiny
	case "small":
		scale = core.Small
	case "full":
		scale = core.Full
	default:
		fail(fmt.Errorf("unknown scale %q", *scaleFlag))
	}
	train, test := w.Generate(scale, rng.New(*seed))

	dst := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fail(err)
		}
		defer func() {
			if err := f.Close(); err != nil {
				fail(err)
			}
		}()
		dst = f
	}
	cw := csv.NewWriter(dst)
	defer cw.Flush()

	writeSplit := func(name string, ds *biodata.Dataset) error {
		limit := ds.N()
		if *head > 0 && *head < limit {
			limit = *head
		}
		for i := 0; i < limit; i++ {
			row := make([]string, 0, ds.Dim()+3)
			row = append(row, name)
			for _, v := range ds.X.Row(i).Data {
				row = append(row, strconv.FormatFloat(v, 'g', 8, 64))
			}
			if ds.Labels != nil {
				row = append(row, strconv.Itoa(ds.Labels[i]))
			} else {
				for _, v := range ds.Y.Row(i).Data {
					row = append(row, strconv.FormatFloat(v, 'g', 8, 64))
				}
			}
			if err := cw.Write(row); err != nil {
				return err
			}
		}
		return nil
	}

	// Header: split, f0..fD-1, label/target.
	header := []string{"split"}
	for j := 0; j < train.Dim(); j++ {
		header = append(header, "f"+strconv.Itoa(j))
	}
	if train.Labels != nil {
		header = append(header, "label")
	} else {
		for j := 0; j < train.OutDim(); j++ {
			header = append(header, "y"+strconv.Itoa(j))
		}
	}
	if err := cw.Write(header); err != nil {
		fail(err)
	}
	if err := writeSplit("train", train); err != nil {
		fail(err)
	}
	if err := writeSplit("test", test); err != nil {
		fail(err)
	}
}

func fail(err error) {
	fmt.Fprintf(os.Stderr, "candledata: %v\n", err)
	os.Exit(1)
}
