// Command candlebench runs the paper-reproduction experiment suite (E1-E9)
// and prints one result table per experiment.
//
// Usage:
//
//	candlebench [-quick] [-seed N] [-only E3,E8] [-csv dir]
//
// Each experiment reproduces one architectural claim of Stevens' HPDC 2017
// keynote; DESIGN.md maps claims to experiments and EXPERIMENTS.md records
// the measured shapes.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"repro/internal/experiments"
)

func main() {
	quick := flag.Bool("quick", false, "shrink budgets for a fast pass")
	seed := flag.Uint64("seed", 1, "root seed for all experiments")
	only := flag.String("only", "", "comma-separated experiment IDs (e.g. E1,E8); empty = all")
	csvDir := flag.String("csv", "", "directory to also write per-experiment CSV files into")
	ablations := flag.Bool("ablations", false, "also run the design-choice ablations A1-A3")
	flag.Parse()

	want := map[string]bool{}
	if *only != "" {
		for _, id := range strings.Split(*only, ",") {
			want[strings.TrimSpace(id)] = true
		}
	}

	cfg := experiments.Config{Quick: *quick, Seed: *seed}
	suite := experiments.All()
	if *ablations {
		suite = append(suite, experiments.Ablations()...)
	}
	ran := 0
	for _, e := range suite {
		if len(want) > 0 && !want[e.ID] {
			continue
		}
		fmt.Printf("--- %s: %q\n", e.ID, e.Claim)
		start := time.Now()
		table := e.Run(cfg)
		if err := table.Render(os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "candlebench: %s render: %v\n", e.ID, err)
			os.Exit(1)
		}
		fmt.Printf("(%s in %.1fs)\n\n", e.ID, time.Since(start).Seconds())
		if *csvDir != "" {
			path := filepath.Join(*csvDir, strings.ToLower(e.ID)+".csv")
			f, err := os.Create(path)
			if err != nil {
				fmt.Fprintf(os.Stderr, "candlebench: %v\n", err)
				os.Exit(1)
			}
			if err := table.WriteCSV(f); err != nil {
				fmt.Fprintf(os.Stderr, "candlebench: %v\n", err)
				os.Exit(1)
			}
			if err := f.Close(); err != nil {
				fmt.Fprintf(os.Stderr, "candlebench: %v\n", err)
				os.Exit(1)
			}
		}
		ran++
	}
	if ran == 0 {
		fmt.Fprintln(os.Stderr, "candlebench: no experiments matched -only")
		os.Exit(1)
	}
}
