// Command candlebench runs the paper-reproduction experiment suite (E1-E17)
// and prints one result table per experiment.
//
// Usage:
//
//	candlebench [-quick] [-seed N] [-only E3,E8] [-csv dir] [-json dir]
//	            [-metrics m.jsonl] [-trace t.json] [-comm BENCH_comm.json]
//	            [-kernels BENCH_kernels.json] [-data BENCH_data.json]
//
// Each experiment reproduces one architectural claim of Stevens' HPDC 2017
// keynote; DESIGN.md maps claims to experiments and EXPERIMENTS.md records
// the measured shapes. -trace wraps every experiment in a phase span (with
// trainer/collective/scheduler spans nested inside) and writes a
// chrome://tracing-loadable JSON file; -metrics dumps the suite's counters,
// gauges and timer histograms as JSON lines; -json writes each table as a
// machine-readable JSON file next to the usual CSV export.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"time"

	"repro/internal/experiments"
	"repro/internal/obs"
)

func main() {
	quick := flag.Bool("quick", false, "shrink budgets for a fast pass")
	seed := flag.Uint64("seed", 1, "root seed for all experiments")
	only := flag.String("only", "", "comma-separated experiment IDs (e.g. E1,E8); empty = all")
	csvDir := flag.String("csv", "", "directory to also write per-experiment CSV files into")
	jsonDir := flag.String("json", "", "directory to also write per-experiment JSON tables into")
	ablations := flag.Bool("ablations", false, "also run the design-choice ablations A1-A3")
	metricsOut := flag.String("metrics", "", "write suite counters/gauges/timer histograms as JSONL to this file")
	omOut := flag.String("metrics-out", "", "write suite counters/gauges/histograms in OpenMetrics (Prometheus) text format to this file")
	traceOut := flag.String("trace", "", "write a chrome://tracing span trace (JSON) to this file")
	commOut := flag.String("comm", "", "write the deterministic gradient-communication profile (BENCH_comm.json) to this file and exit")
	kernelsOut := flag.String("kernels", "", "measure the float32 kernel-engine profile (BENCH_kernels.json) on this host, write it to this file, and exit")
	dataOut := flag.String("data", "", "write the deterministic tiered-staging data-plane profile (BENCH_data.json) to this file and exit")
	searchOut := flag.String("search", "", "write the deterministic search-at-scale profile (BENCH_search.json) to this file and exit")
	flag.Parse()

	if *commOut != "" {
		// The committed profile is pure machine-model output: same binary,
		// same bytes, so the artifact can be byte-compared in tests.
		writeTo(*commOut, experiments.CommBench().WriteJSON)
		fmt.Printf("comm profile: %s\n", *commOut)
		return
	}
	if *dataOut != "" {
		// Virtual-clock output of a seeded run through the real streaming
		// loader: same binary, same bytes, byte-compared in tests.
		writeTo(*dataOut, experiments.DataBench().WriteJSON)
		fmt.Printf("data-plane profile: %s\n", *dataOut)
		return
	}
	if *searchOut != "" {
		// Virtual-clock fleet scheduling plus analytic search landscape:
		// same binary, same bytes, byte-compared in tests. SearchBench also
		// gates the headline invariants (fault layer on, throughput grows
		// with nodes, learning searchers beat random at equal budget).
		rep, err := experiments.SearchBench(*seed, nil)
		if err != nil {
			fail(err)
		}
		writeTo(*searchOut, rep.WriteJSON)
		fmt.Printf("search-at-scale profile: %s\n", *searchOut)
		return
	}
	if *kernelsOut != "" {
		// Wall-clock measurement: the artifact test asserts the committed
		// headline invariants rather than byte-comparing a regeneration.
		rep := experiments.KernelsBench(*quick)
		writeTo(*kernelsOut, rep.WriteJSON)
		fmt.Printf("kernels profile: %s (packed f32 %.2fx f64 blocked at %d³, train x%.2f)\n",
			*kernelsOut, rep.PackedVsF64, rep.HeadlineSize, rep.TrainSpeedupF32)
		return
	}

	want := map[string]bool{}
	if *only != "" {
		for _, id := range strings.Split(*only, ",") {
			want[strings.TrimSpace(id)] = true
		}
	}

	var sess *obs.Session
	if *metricsOut != "" || *omOut != "" || *traceOut != "" {
		sess = obs.NewSession()
	}

	cfg := experiments.Config{Quick: *quick, Seed: *seed, Obs: sess}
	suite := experiments.All()
	if *ablations {
		suite = append(suite, experiments.Ablations()...)
	}
	ran := 0
	for _, e := range suite {
		if len(want) > 0 && !want[e.ID] {
			continue
		}
		fmt.Printf("--- %s: %q\n", e.ID, e.Claim)
		start := time.Now()
		sp := sess.Span(0, e.ID)
		sp.SetArg("claim", e.Claim)
		table := e.Run(cfg)
		sp.End()
		if err := table.Render(os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "candlebench: %s render: %v\n", e.ID, err)
			os.Exit(1)
		}
		fmt.Printf("(%s in %.1fs)\n\n", e.ID, time.Since(start).Seconds())
		if *csvDir != "" {
			writeTable(*csvDir, e.ID, ".csv", table.WriteCSV)
		}
		if *jsonDir != "" {
			writeTable(*jsonDir, e.ID, ".json", table.WriteJSON)
		}
		ran++
	}
	if ran == 0 {
		fmt.Fprintln(os.Stderr, "candlebench: no experiments matched -only")
		os.Exit(1)
	}
	if *metricsOut != "" {
		writeTo(*metricsOut, sess.WriteMetricsJSONL)
		fmt.Printf("metrics: %s\n", *metricsOut)
	}
	if *omOut != "" {
		writeTo(*omOut, sess.WriteOpenMetrics)
		fmt.Printf("openmetrics: %s\n", *omOut)
	}
	if *traceOut != "" {
		writeTo(*traceOut, sess.WriteChromeTrace)
		fmt.Printf("trace:   %s (%d spans; open in chrome://tracing or ui.perfetto.dev)\n",
			*traceOut, sess.Tracer.NumEvents())
	}
}

// writeTable writes one experiment table into dir/<id><ext> via fn.
func writeTable(dir, id, ext string, fn func(w io.Writer) error) {
	writeTo(filepath.Join(dir, strings.ToLower(id)+ext), fn)
}

// writeTo writes via fn into path, exiting the command on any error.
func writeTo(path string, fn func(w io.Writer) error) {
	f, err := os.Create(path)
	if err != nil {
		fail(err)
	}
	if err := fn(f); err != nil {
		fail(err)
	}
	if err := f.Close(); err != nil {
		fail(err)
	}
}

func fail(err error) {
	fmt.Fprintf(os.Stderr, "candlebench: %v\n", err)
	os.Exit(1)
}
