package main

import (
	"bytes"
	"encoding/json"
	"os"
	"os/exec"
	"path/filepath"
	"testing"

	"repro/internal/experiments"
)

// buildCandlebench compiles the command once into a temp dir.
func buildCandlebench(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "candlebench")
	out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput()
	if err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	return bin
}

func runCandlebench(t *testing.T, bin string, args ...string) string {
	t.Helper()
	out, err := exec.Command(bin, args...).CombinedOutput()
	if err != nil {
		t.Fatalf("candlebench %v: %v\n%s", args, err, out)
	}
	return string(out)
}

type commDoc struct {
	Ranks int `json:"ranks"`
	Flat  struct {
		StepMs  float64 `json:"step_ms"`
		Overlap float64 `json:"overlap_fraction"`
	} `json:"flat"`
	Bucketed []struct {
		Buckets int     `json:"buckets"`
		StepMs  float64 `json:"step_ms"`
		Overlap float64 `json:"overlap_fraction"`
		Speedup float64 `json:"speedup_vs_flat"`
	} `json:"bucketed"`
	Compressed []struct {
		Label     string  `json:"label"`
		WireRatio float64 `json:"wire_ratio"`
		StepMs    float64 `json:"step_ms"`
	} `json:"compressed"`
	BestSpeedup float64 `json:"best_speedup"`
}

// TestCommProfileIsBitIdentical generates the gradient-communication profile
// twice and requires byte-identical JSON — the property that lets
// BENCH_comm.json live in the repository — then checks the headline shape:
// bucketed overlap must beat the flat allreduce, and both compressed
// configurations must beat the uncompressed step.
func TestCommProfileIsBitIdentical(t *testing.T) {
	bin := buildCandlebench(t)
	dir := t.TempDir()
	j1 := filepath.Join(dir, "a.json")
	j2 := filepath.Join(dir, "b.json")

	runCandlebench(t, bin, "-comm", j1)
	runCandlebench(t, bin, "-comm", j2)

	b1, err := os.ReadFile(j1)
	if err != nil {
		t.Fatal(err)
	}
	b2, err := os.ReadFile(j2)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1, b2) {
		t.Fatalf("two runs produced different comm JSON:\n%s\n---\n%s", b1, b2)
	}

	var doc commDoc
	if err := json.Unmarshal(b1, &doc); err != nil {
		t.Fatalf("comm JSON does not parse: %v", err)
	}
	if doc.BestSpeedup <= 1 {
		t.Fatalf("best bucketed speedup %v not above flat", doc.BestSpeedup)
	}
	if doc.Flat.Overlap != 0 {
		t.Fatalf("flat allreduce reports overlap %v", doc.Flat.Overlap)
	}
	sawOverlap := false
	for _, r := range doc.Bucketed {
		if r.Overlap > 0 && r.StepMs < doc.Flat.StepMs {
			sawOverlap = true
		}
	}
	if !sawOverlap {
		t.Fatalf("no bucketed row overlaps and beats flat: %+v", doc.Bucketed)
	}
	if len(doc.Compressed) < 2 {
		t.Fatalf("expected top-k and int8 rows, got %+v", doc.Compressed)
	}
	for _, c := range doc.Compressed {
		if c.WireRatio <= 1 {
			t.Fatalf("%s wire ratio %v not above 1", c.Label, c.WireRatio)
		}
		if c.StepMs >= doc.Flat.StepMs {
			t.Fatalf("%s step %vms not below flat %vms", c.Label, c.StepMs, doc.Flat.StepMs)
		}
	}
}

// TestCommittedCommArtifactIsCurrent regenerates BENCH_comm.json and
// compares it byte-for-byte with the committed copy, so the artifact can
// never drift from the code that claims to produce it.
func TestCommittedCommArtifactIsCurrent(t *testing.T) {
	committed, err := os.ReadFile(filepath.Join("..", "..", "BENCH_comm.json"))
	if err != nil {
		t.Skipf("no committed BENCH_comm.json: %v", err)
	}
	bin := buildCandlebench(t)
	fresh := filepath.Join(t.TempDir(), "fresh.json")
	runCandlebench(t, bin, "-comm", fresh)
	got, err := os.ReadFile(fresh)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(committed, got) {
		t.Fatal("BENCH_comm.json is stale: regenerate with `make bench-comm`")
	}
}

// TestDataProfileIsBitIdentical generates the tiered-staging data-plane
// profile twice and requires byte-identical JSON — everything in it is
// virtual-clock output of a seeded run through the real streaming loader —
// then checks the E7 crossover shape survives end-to-end execution: warm
// NVRAM staging must crush direct-PFS once the dataset exceeds DRAM, and
// the prefetched warm epoch must sit at max(compute, stage-in).
func TestDataProfileIsBitIdentical(t *testing.T) {
	bin := buildCandlebench(t)
	dir := t.TempDir()
	j1 := filepath.Join(dir, "a.json")
	j2 := filepath.Join(dir, "b.json")

	runCandlebench(t, bin, "-data", j1)
	runCandlebench(t, bin, "-data", j2)

	b1, err := os.ReadFile(j1)
	if err != nil {
		t.Fatal(err)
	}
	b2, err := os.ReadFile(j2)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1, b2) {
		t.Fatalf("two runs produced different data-plane JSON:\n%s\n---\n%s", b1, b2)
	}

	var rep experiments.DataBenchReport
	if err := json.Unmarshal(b1, &rep); err != nil {
		t.Fatalf("data JSON does not parse: %v", err)
	}
	checkDataReport(t, &rep)
}

// checkDataReport asserts the headline invariants on a data-plane report.
func checkDataReport(t *testing.T, rep *experiments.DataBenchReport) {
	t.Helper()
	row := func(dsGB float64, policy string) experiments.DataBenchRow {
		for _, r := range rep.Rows {
			if r.DatasetGB == dsGB && r.Policy == policy {
				return r
			}
		}
		t.Fatalf("no row for %gGB/%s", dsGB, policy)
		return experiments.DataBenchRow{}
	}
	// Fits DRAM: the warm epoch is compute-bound out of the DRAM cache.
	if r := row(32, "dram-lru"); r.WarmDRAMHits != r.Shards || r.WarmStallFrac > 0.05 {
		t.Fatalf("32GB warm epoch not DRAM-resident and compute-bound: %+v", r)
	}
	// Exceeds DRAM, fits NVRAM: staged NVRAM beats direct PFS by >10x.
	nv, direct := row(256, "nvram-staged"), row(256, "direct-pfs+prefetch")
	if !(nv.WarmEpochS*10 < direct.WarmEpochS) {
		t.Fatalf("NVRAM staging %.1fs not >10x faster than direct PFS %.1fs at 256GB",
			nv.WarmEpochS, direct.WarmEpochS)
	}
	// Prefetch>0 collapses the warm epoch to ~max(compute, stage-in).
	bound := nv.WarmComputeS
	if nv.WarmStageS > bound {
		bound = nv.WarmStageS
	}
	if nv.WarmEpochS < bound-1e-9 || nv.WarmEpochS > 1.05*bound {
		t.Fatalf("prefetched warm epoch %.2fs is not ~max(compute %.2fs, stage %.2fs)",
			nv.WarmEpochS, nv.WarmComputeS, nv.WarmStageS)
	}
	// Exceeds NVRAM: tiering helps, but the PFS is back on the clock.
	t2000, d2000 := row(2000, "tiered-dram-nvram"), row(2000, "direct-pfs+prefetch")
	if !(t2000.WarmEpochS < 0.9*d2000.WarmEpochS) || t2000.WarmPFSReads == 0 {
		t.Fatalf("2TB tiering %.0fs vs direct %.0fs (PFS reads %d): crossover gone",
			t2000.WarmEpochS, d2000.WarmEpochS, t2000.WarmPFSReads)
	}
}

// TestCommittedDataArtifactIsCurrent regenerates BENCH_data.json and
// compares it byte-for-byte with the committed copy (the profile is pure
// virtual-clock output, so it can never legitimately drift), then re-checks
// the committed numbers still carry the E7 crossover.
func TestCommittedDataArtifactIsCurrent(t *testing.T) {
	committed, err := os.ReadFile(filepath.Join("..", "..", "BENCH_data.json"))
	if err != nil {
		t.Skipf("no committed BENCH_data.json: %v", err)
	}
	bin := buildCandlebench(t)
	fresh := filepath.Join(t.TempDir(), "fresh.json")
	runCandlebench(t, bin, "-data", fresh)
	got, err := os.ReadFile(fresh)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(committed, got) {
		t.Fatal("BENCH_data.json is stale: regenerate with `make bench-data`")
	}
	// Schema currency: decoding into the current report type and re-encoding
	// must reproduce the committed bytes exactly.
	var rep experiments.DataBenchReport
	if err := json.Unmarshal(committed, &rep); err != nil {
		t.Fatalf("data JSON does not parse: %v", err)
	}
	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(committed, buf.Bytes()) {
		t.Fatal("BENCH_data.json does not match the current schema: regenerate with `make bench-data`")
	}
	checkDataReport(t, &rep)
}

// TestCommittedKernelsArtifactIsCurrent checks BENCH_kernels.json two ways.
// The numbers are wall-clock measurements, so unlike BENCH_comm.json the file
// cannot be byte-compared against a fresh run; instead (1) decoding it into
// the current KernelsReport and re-encoding must reproduce it byte-for-byte,
// which pins the committed file to the current schema and field order, and
// (2) the committed numbers must still carry the headline claims: every
// registered backend measured at the headline size, packed-f32 at least 2x
// the f64 blocked GEMM at 512³, and a real training uplift from ComputeF32.
func TestCommittedKernelsArtifactIsCurrent(t *testing.T) {
	committed, err := os.ReadFile(filepath.Join("..", "..", "BENCH_kernels.json"))
	if err != nil {
		t.Skipf("no committed BENCH_kernels.json: %v", err)
	}
	var rep experiments.KernelsReport
	if err := json.Unmarshal(committed, &rep); err != nil {
		t.Fatalf("kernels JSON does not parse: %v", err)
	}
	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(committed, buf.Bytes()) {
		t.Fatal("BENCH_kernels.json does not match the current schema: regenerate with `make bench-kernels`")
	}

	if rep.HeadlineSize != 512 {
		t.Fatalf("headline size %d, want the 512³ acceptance shape", rep.HeadlineSize)
	}
	want := map[string]bool{"naive": false, "blocked": false, "packed": false}
	for _, r := range rep.Gemm {
		if r.GFLOPs <= 0 {
			t.Fatalf("non-positive GFLOP/s row: %+v", r)
		}
		if _, ok := want[r.Backend]; ok && r.Size == rep.HeadlineSize {
			want[r.Backend] = true
		}
	}
	for name, seen := range want {
		if !seen {
			t.Fatalf("backend %s not measured at the headline size", name)
		}
	}
	if rep.PackedVsF64 < 2 {
		t.Fatalf("packed f32 only %.2fx the f64 blocked GEMM at %d³; the engine's 2x claim is gone",
			rep.PackedVsF64, rep.HeadlineSize)
	}
	if rep.TrainSpeedupF32 <= 1 {
		t.Fatalf("ComputeF32 training speedup %.2fx not above 1", rep.TrainSpeedupF32)
	}
	if len(rep.Train) != 2 || rep.Train[0].Mode != "f64" || rep.Train[1].Mode != "f32-compute" {
		t.Fatalf("train rows %+v missing the f64/f32-compute pair", rep.Train)
	}
}

// checkSearchReport asserts the headline invariants on a search-at-scale
// report (SearchBench already gates them at generation time; re-checking
// here pins the committed numbers, not just the generator).
func checkSearchReport(t *testing.T, rep *experiments.SearchBenchReport) {
	t.Helper()
	if len(rep.Rows) < 3 {
		t.Fatalf("expected at least 3 machine sizes, got %d", len(rep.Rows))
	}
	prevBudget := 0.0
	for _, row := range rep.Rows {
		if row.ShardKills == 0 || row.Interrupted == 0 || row.Steals == 0 || row.Retries == 0 {
			t.Fatalf("fault layer idle at %d nodes: %+v", row.Nodes, row)
		}
		if row.EvalBudget <= prevBudget {
			t.Fatalf("eval budget not growing with machine size at %d nodes", row.Nodes)
		}
		prevBudget = row.EvalBudget
		best := map[string]float64{}
		for _, s := range row.Strategies {
			best[s.Strategy] = s.TrueBest
			if s.Budget != row.EvalBudget || s.CostUsed > s.Budget+1e-9 {
				t.Fatalf("%s at %d nodes: budget %v cost %v (row budget %v)",
					s.Strategy, row.Nodes, s.Budget, s.CostUsed, row.EvalBudget)
			}
		}
		for _, name := range []string{"rl", "pbt"} {
			if best[name] >= best["random"] {
				t.Fatalf("%s true best %.4f not below random %.4f at %d nodes",
					name, best[name], best["random"], row.Nodes)
			}
		}
	}
}

// TestSearchProfileIsBitIdentical generates the search-at-scale profile
// twice and requires byte-identical JSON — the fleet is a deterministic
// discrete-event simulation and the search landscape is analytic, so the
// artifact can live in the repository — then checks the headline shape.
func TestSearchProfileIsBitIdentical(t *testing.T) {
	bin := buildCandlebench(t)
	dir := t.TempDir()
	j1 := filepath.Join(dir, "a.json")
	j2 := filepath.Join(dir, "b.json")

	runCandlebench(t, bin, "-search", j1)
	runCandlebench(t, bin, "-search", j2)

	b1, err := os.ReadFile(j1)
	if err != nil {
		t.Fatal(err)
	}
	b2, err := os.ReadFile(j2)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1, b2) {
		t.Fatalf("two runs produced different search JSON:\n%s\n---\n%s", b1, b2)
	}

	var rep experiments.SearchBenchReport
	if err := json.Unmarshal(b1, &rep); err != nil {
		t.Fatalf("search JSON does not parse: %v", err)
	}
	checkSearchReport(t, &rep)
}

// TestCommittedSearchArtifactIsCurrent regenerates BENCH_search.json and
// compares it byte-for-byte with the committed copy, then re-checks the
// committed numbers still carry the search-at-scale claims.
func TestCommittedSearchArtifactIsCurrent(t *testing.T) {
	committed, err := os.ReadFile(filepath.Join("..", "..", "BENCH_search.json"))
	if err != nil {
		t.Skipf("no committed BENCH_search.json: %v", err)
	}
	bin := buildCandlebench(t)
	fresh := filepath.Join(t.TempDir(), "fresh.json")
	runCandlebench(t, bin, "-search", fresh)
	got, err := os.ReadFile(fresh)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(committed, got) {
		t.Fatal("BENCH_search.json is stale: regenerate with `make bench-search`")
	}
	// Schema currency: decode + re-encode must reproduce the bytes.
	var rep experiments.SearchBenchReport
	if err := json.Unmarshal(committed, &rep); err != nil {
		t.Fatalf("search JSON does not parse: %v", err)
	}
	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(committed, buf.Bytes()) {
		t.Fatal("BENCH_search.json does not match the current schema: regenerate with `make bench-search`")
	}
	checkSearchReport(t, &rep)
}
