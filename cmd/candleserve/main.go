// Command candleserve load-tests the inference serving subsystem: the
// dynamic micro-batcher, replica pool, and admission control of
// internal/serve.
//
// The default engine is the deterministic discrete-event simulator — the
// same batching policy as the real server, driven on virtual time — so a
// given seed always produces a bit-identical report (this is what generates
// the committed BENCH_serve.json). With -live the same load profile is
// replayed against a real concurrent Server running actual forward passes
// on the wall clock.
//
// Usage:
//
//	candleserve [-mode open|closed] [-requests N] [-rate RPS] [-clients N]
//	            [-think D] [-deadline D] [-replicas N] [-max-batch N]
//	            [-linger D] [-queue-cap N] [-max-pending N] [-seed N]
//	            [-live] [-json FILE] [-slo SPEC] [-slo-window D]
//	            [-metrics-out FILE]
//	candleserve -bench [-json BENCH_serve.json]
//	candleserve -resil [-json BENCH_resil.json]
//	candleserve -rollout [-json BENCH_rollout.json]
//
// -rate 0 (the default) resolves to 80% of the pool's analytic capacity —
// just below the knee. -bench runs the committed two-point profile: a
// 10k-request open loop below the knee (zero drops) and the same load at
// 2.5x capacity (bounded tail, excess shed), written as one JSON document.
// -resil runs the committed gray-failure profile: a clean calibration run
// fixes the hedge budget at the healthy p95, then a fleet with one replica
// degraded 10x is replayed unhedged and hedged at budgets on both sides of
// the calibration point (0.5x, 1x, 2x, 4x p95), written as one JSON
// document (this is what generates BENCH_resil.json). -rollout runs the
// committed self-healing control-plane profile (E17): three mid-run deploys
// — a poisoned candidate caught by shadow traffic, the same candidate rolled
// back from the live canary stage, a healthy candidate promoted — plus a
// flash crowd against fixed and autoscaled fleets, written as one JSON
// document (this is what generates BENCH_rollout.json). -autoscale attaches
// a health-driven autoscaler to a plain simulator run.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"repro/internal/experiments"
	"repro/internal/nn"
	"repro/internal/obs"
	"repro/internal/rng"
	"repro/internal/serve"
)

func main() {
	mode := flag.String("mode", "open", "load generator: open (Poisson arrivals, sheds) or closed (blocking clients)")
	requests := flag.Int("requests", 10000, "total requests to issue")
	rate := flag.Float64("rate", 0, "open-loop offered load in requests/sec (0 = 80% of capacity)")
	clients := flag.Int("clients", 8, "closed-loop concurrent clients")
	think := flag.Duration("think", time.Millisecond, "closed-loop mean think time")
	deadline := flag.Duration("deadline", 0, "per-request completion deadline (0 = none)")
	replicas := flag.Int("replicas", 2, "model replicas")
	maxBatch := flag.Int("max-batch", 8, "micro-batcher size bound")
	linger := flag.Duration("linger", 2*time.Millisecond, "micro-batcher linger bound")
	queueCap := flag.Int("queue-cap", 64, "admission queue capacity")
	maxPending := flag.Int("max-pending", 0, "pool backlog bound in batches (0 = 2*replicas)")
	seed := flag.Uint64("seed", 1, "seed: same seed, same report (simulator engine)")
	live := flag.Bool("live", false, "drive a real concurrent Server (wall clock) instead of the simulator")
	bench := flag.Bool("bench", false, "run the committed below/above-knee benchmark profile")
	resil := flag.Bool("resil", false, "run the committed gray-failure resilience profile (hedging frontier)")
	rollout := flag.Bool("rollout", false, "run the committed self-healing control-plane profile (canary rollout + autoscaling)")
	autoscale := flag.Bool("autoscale", false, "attach a health-driven autoscaler (Min 1, Max 2x -replicas) to the run (simulator engine only)")
	jsonOut := flag.String("json", "", "write the report(s) as JSON to this file")
	sloSpec := flag.String("slo", "", `attach SLO objectives, e.g. "avail=0.999,p99=25ms" (simulator engine only)`)
	sloWindow := flag.Duration("slo-window", 0, "scale burn-rate alert windows to this horizon (0 = the classic hour-scale rules)")
	metricsOut := flag.String("metrics-out", "", "write the run's counters and latency histogram in OpenMetrics (Prometheus) text format to this file")
	flag.Parse()

	cfg := serve.LoadConfig{
		Requests:          *requests,
		Closed:            *mode == "closed",
		RatePerSec:        *rate,
		Clients:           *clients,
		ThinkMean:         *think,
		Deadline:          *deadline,
		Replicas:          *replicas,
		MaxBatch:          *maxBatch,
		MaxLinger:         *linger,
		QueueCap:          *queueCap,
		MaxPendingBatches: *maxPending,
		Service:           serve.DefaultServiceModel(),
		Seed:              *seed,
	}
	switch *mode {
	case "open", "closed":
	default:
		fail(fmt.Errorf("unknown -mode %q (want open or closed)", *mode))
	}
	capacity := cfg.Service.CapacityRPS(cfg.Replicas, cfg.MaxBatch)
	if !cfg.Closed && cfg.RatePerSec <= 0 {
		cfg.RatePerSec = 0.8 * capacity
	}

	if *bench {
		runBench(cfg, capacity, *jsonOut)
		return
	}
	if *resil {
		runResil(cfg, *jsonOut)
		return
	}
	if *rollout {
		runRollout(cfg.Seed, cfg.Requests, *jsonOut)
		return
	}
	if *autoscale {
		if *live {
			fail(fmt.Errorf("-autoscale needs the deterministic simulator (drop -live)"))
		}
		cfg.Autoscale = &serve.AutoscaleConfig{
			Min: 1, Max: 2 * cfg.Replicas,
			QueueHigh: 4, QueueLow: 0.5, SurgeMax: 2,
		}
		cfg.Replicas = 1 // start at the floor; the scaler earns the rest
	}

	if *sloSpec != "" {
		if *live {
			fail(fmt.Errorf("-slo needs the deterministic simulator (drop -live)"))
		}
		objs, err := obs.ParseSLOSpec(*sloSpec)
		if err != nil {
			fail(err)
		}
		cfg.SLO = objs
		if *sloWindow > 0 {
			cfg.SLORules = obs.ScaledBurnRules(*sloWindow)
		}
	}
	var sess *obs.Session
	if *metricsOut != "" {
		if *live {
			fail(fmt.Errorf("-metrics-out needs the deterministic simulator (drop -live)"))
		}
		sess = obs.NewSession()
		cfg.Obs = sess
	}

	rep := run(cfg, *live)
	render(rep, capacity)
	renderSLO(rep)
	renderControl(rep)
	if *jsonOut != "" {
		writeJSON(*jsonOut, rep)
	}
	if *metricsOut != "" {
		writeTo(*metricsOut, sess.WriteOpenMetrics)
		fmt.Printf("openmetrics: %s\n", *metricsOut)
	}
}

// renderSLO prints the objective compliance summary and the alert timeline
// when the run carried an SLO monitor.
func renderSLO(rep *serve.LoadReport) {
	if len(rep.SLOStatus) == 0 {
		return
	}
	for _, st := range rep.SLOStatus {
		verdict := "MET"
		if !st.Met {
			verdict = "VIOLATED"
		}
		fmt.Printf("slo %-12s target=%g good=%d/%d ratio=%.6f %s\n",
			st.Objective, st.Target, st.Good, st.Total, st.Ratio, verdict)
	}
	if err := obs.WriteAlertTimeline(os.Stdout, rep.SLOAlerts); err != nil {
		fail(err)
	}
}

// writeTo writes via fn into path, failing the command on any error.
func writeTo(path string, fn func(w io.Writer) error) {
	f, err := os.Create(path)
	if err != nil {
		fail(err)
	}
	if err := fn(f); err != nil {
		fail(err)
	}
	if err := f.Close(); err != nil {
		fail(err)
	}
}

// run executes one load test on the selected engine.
func run(cfg serve.LoadConfig, live bool) *serve.LoadReport {
	if live {
		const inDim = 32
		net := nn.MLP(inDim, []int{64}, 4, nn.ReLU, rng.New(cfg.Seed))
		rep, err := serve.RunLive(net, inDim, cfg)
		if err != nil {
			fail(err)
		}
		return rep
	}
	rep, err := serve.RunLoad(cfg)
	if err != nil {
		fail(err)
	}
	return rep
}

// benchReport is the committed BENCH_serve.json document: one run just
// below the serving knee, one well past it.
type benchReport struct {
	BelowKnee *serve.LoadReport `json:"below_knee"`
	AboveKnee *serve.LoadReport `json:"above_knee"`
}

func runBench(cfg serve.LoadConfig, capacity float64, jsonOut string) {
	below := cfg
	below.Closed = false
	below.RatePerSec = 0.8 * capacity
	belowRep, err := serve.RunLoad(below)
	if err != nil {
		fail(err)
	}
	above := cfg
	above.Closed = false
	above.RatePerSec = 2.5 * capacity
	aboveRep, err := serve.RunLoad(above)
	if err != nil {
		fail(err)
	}

	fmt.Printf("# below the knee (%.0f rps offered, capacity %.0f rps)\n",
		below.RatePerSec, capacity)
	render(belowRep, capacity)
	fmt.Printf("\n# above the knee (%.0f rps offered)\n", above.RatePerSec)
	render(aboveRep, capacity)

	if belowRep.Shed != 0 {
		fail(fmt.Errorf("bench profile broken: %d requests shed below the knee", belowRep.Shed))
	}
	if aboveRep.Shed == 0 {
		fail(fmt.Errorf("bench profile broken: nothing shed at 2.5x capacity"))
	}
	if jsonOut != "" {
		writeJSON(jsonOut, &benchReport{BelowKnee: belowRep, AboveKnee: aboveRep})
	}
}

// resilReport is the committed BENCH_resil.json document: a clean
// calibration run, the gray-degraded fleet unhedged, and the same fleet
// hedged at budgets on both sides of the calibrated healthy p95.
type resilReport struct {
	HedgeBudgetMs    float64             `json:"hedge_budget_ms"`
	Clean            *serve.LoadReport   `json:"clean"`
	DegradedUnhedged *serve.LoadReport   `json:"degraded_unhedged"`
	Hedged           []*serve.LoadReport `json:"hedged"`
}

// runResil executes the gray-failure resilience profile. The fleet shape is
// pinned (6 replicas, batch 8, 20% of capacity offered) so the committed
// artifact depends only on -requests and -seed; only the scenario knobs —
// degradation and hedge budget — vary across runs.
func runResil(cfg serve.LoadConfig, jsonOut string) {
	base := cfg
	base.Closed = false
	base.Deadline = 0
	base.Replicas = 6
	base.MaxBatch = 8
	base.MaxLinger = 2 * time.Millisecond
	base.QueueCap = 256
	base.MaxPendingBatches = 0
	capacity := base.Service.CapacityRPS(base.Replicas, base.MaxBatch)
	base.RatePerSec = 0.2 * capacity

	mustRun := func(c serve.LoadConfig) *serve.LoadReport {
		rep, err := serve.RunLoad(c)
		if err != nil {
			fail(err)
		}
		return rep
	}

	clean := mustRun(base)
	budget := time.Duration(clean.LatencyP95Ms * float64(time.Millisecond))

	degraded := base
	degraded.DegradeFactor = 10
	degraded.DegradeReplica = 0
	unhedged := mustRun(degraded)

	doc := &resilReport{
		HedgeBudgetMs:    float64(budget) / float64(time.Millisecond),
		Clean:            clean,
		DegradedUnhedged: unhedged,
	}
	fmt.Printf("# clean calibration (hedge budget = p95 = %.3fms)\n", doc.HedgeBudgetMs)
	render(clean, capacity)
	fmt.Printf("\n# degraded: replica 0 at 10x, unhedged\n")
	render(unhedged, capacity)
	for _, mult := range []float64{0.5, 1, 2, 4} {
		hedged := degraded
		hedged.HedgeAfter = time.Duration(float64(budget) * mult)
		rep := mustRun(hedged)
		doc.Hedged = append(doc.Hedged, rep)
		fmt.Printf("\n# degraded, hedged at %gx p95 (%.3fms)\n",
			mult, float64(hedged.HedgeAfter)/float64(time.Millisecond))
		render(rep, capacity)
		fmt.Printf("hedged=%d hedge-wins=%d dup-work=%.2f%%\n",
			rep.Hedged, rep.HedgeWins, rep.DuplicatedWorkPct)
	}

	// The profile's reason to exist: hedging at the calibrated budget must
	// buy the tail back cheaply. Fail loudly if the policy regresses.
	atBudget := doc.Hedged[1]
	if atBudget.LatencyP99Ms*2 > unhedged.LatencyP99Ms {
		fail(fmt.Errorf("resil profile broken: hedging at p95 cut p99 only %.2fms -> %.2fms (< 2x)",
			unhedged.LatencyP99Ms, atBudget.LatencyP99Ms))
	}
	if atBudget.DuplicatedWorkPct > 15 {
		fail(fmt.Errorf("resil profile broken: %.1f%% duplicated work at the p95 budget (> 15%%)",
			atBudget.DuplicatedWorkPct))
	}
	if jsonOut != "" {
		writeJSON(jsonOut, doc)
	}
}

// renderControl prints the rollout outcome and the autoscaler trajectory
// when the run carried either.
func renderControl(rep *serve.LoadReport) {
	if rep.RolloutState != "" {
		fmt.Printf("rollout state=%s canary=%d shadow=%d mismatches=%d bad-version=%.2f%%\n",
			rep.RolloutState, rep.CanaryServed, rep.ShadowServed,
			rep.ShadowMismatches, rep.BadVersionPct)
		if rep.TimeToDetectS > 0 {
			fmt.Printf("rollout detect=%.3fs revert=%.3fs\n",
				rep.TimeToDetectS, rep.TimeToRollbackS)
		}
	}
	if rep.ReplicasPeak > 0 {
		fmt.Printf("autoscale peak=%d mean=%.2f final=%d ups=%d downs=%d\n",
			rep.ReplicasPeak, rep.ReplicasMean, rep.ReplicasFinal,
			rep.ScaleUps, rep.ScaleDowns)
	}
}

// runRollout executes the committed E17 self-healing profile. The scenario
// shapes are pinned inside experiments.RolloutBench, so the artifact depends
// only on -requests and -seed; RolloutBench fails loudly if any headline
// invariant — shadow catch with zero live exposure, bounded blast radius,
// clean promotion, autoscaled SLO compliance below the overprovisioned
// fleet's cost — regresses.
func runRollout(seed uint64, requests int, jsonOut string) {
	doc, err := experiments.RolloutBench(seed, requests)
	if err != nil {
		fail(err)
	}
	show := func(name string, rep *serve.LoadReport) {
		fmt.Printf("\n# %s\n", name)
		fmt.Printf("completed=%d shed=%d expired=%d errors=%d\n",
			rep.Completed, rep.Shed, rep.Expired, rep.Errors)
		renderSLO(rep)
		renderControl(rep)
	}
	show("shadow catch: poisoned candidate, shadow phase on", doc.ShadowCatch)
	show("bad deploy: poisoned candidate, no shadow", doc.BadDeploy)
	show("good deploy: healthy candidate", doc.GoodDeploy)
	show("flash crowd: fixed fleet of 1", doc.FlashFixedSmall)
	show("flash crowd: fixed fleet of 4", doc.FlashFixedBig)
	show("flash crowd: autoscaled 1..4", doc.FlashAutoscaled)
	if jsonOut != "" {
		writeJSON(jsonOut, doc)
	}
}

func render(rep *serve.LoadReport, capacity float64) {
	fmt.Printf("mode=%s seed=%d requests=%d replicas=%d max-batch=%d linger=%.2gms\n",
		rep.Mode, rep.Seed, rep.Requests, rep.Replicas, rep.MaxBatch, rep.LingerMs)
	fmt.Printf("offered=%.1f rps  capacity=%.1f rps  throughput=%.1f rps  wall=%.3fs\n",
		rep.OfferedRPS, capacity, rep.ThroughputRPS, rep.WallSeconds)
	fmt.Printf("completed=%d shed=%d expired=%d batches=%d mean-batch=%.2f\n",
		rep.Completed, rep.Shed, rep.Expired, rep.Batches, rep.MeanBatch)
	fmt.Printf("latency-ms mean=%.3f p50=%.3f p95=%.3f p99=%.3f max=%.3f\n",
		rep.LatencyMeanMs, rep.LatencyP50Ms, rep.LatencyP95Ms, rep.LatencyP99Ms, rep.LatencyMaxMs)
}

func writeJSON(path string, v any) {
	f, err := os.Create(path)
	if err != nil {
		fail(err)
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		fail(err)
	}
	if err := f.Close(); err != nil {
		fail(err)
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "candleserve:", err)
	os.Exit(1)
}
