package main

import (
	"bytes"
	"encoding/json"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// buildCandleserve compiles the command once into a temp dir.
func buildCandleserve(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "candleserve")
	out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput()
	if err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	return bin
}

func runCandleserve(t *testing.T, bin string, args ...string) string {
	t.Helper()
	out, err := exec.Command(bin, args...).CombinedOutput()
	if err != nil {
		t.Fatalf("candleserve %v: %v\n%s", args, err, out)
	}
	return string(out)
}

type benchDoc struct {
	BelowKnee struct {
		Completed int `json:"completed"`
		Shed      int `json:"shed"`
		Requests  int `json:"requests"`
	} `json:"below_knee"`
	AboveKnee struct {
		Completed    int     `json:"completed"`
		Shed         int     `json:"shed"`
		LatencyP99Ms float64 `json:"latency_p99_ms"`
	} `json:"above_knee"`
}

// TestBenchProfileIsBitIdentical runs the committed benchmark profile twice
// and requires byte-identical JSON — the property that lets BENCH_serve.json
// live in the repository.
func TestBenchProfileIsBitIdentical(t *testing.T) {
	bin := buildCandleserve(t)
	dir := t.TempDir()
	j1 := filepath.Join(dir, "a.json")
	j2 := filepath.Join(dir, "b.json")

	runCandleserve(t, bin, "-bench", "-requests", "3000", "-json", j1)
	runCandleserve(t, bin, "-bench", "-requests", "3000", "-json", j2)

	b1, err := os.ReadFile(j1)
	if err != nil {
		t.Fatal(err)
	}
	b2, err := os.ReadFile(j2)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1, b2) {
		t.Fatalf("same seed produced different bench JSON:\n%s\n---\n%s", b1, b2)
	}

	var doc benchDoc
	if err := json.Unmarshal(b1, &doc); err != nil {
		t.Fatalf("bench JSON does not parse: %v", err)
	}
	if doc.BelowKnee.Shed != 0 || doc.BelowKnee.Completed != doc.BelowKnee.Requests {
		t.Fatalf("below-knee run dropped requests: %+v", doc.BelowKnee)
	}
	if doc.AboveKnee.Shed == 0 {
		t.Fatalf("above-knee run shed nothing: %+v", doc.AboveKnee)
	}
	if doc.AboveKnee.LatencyP99Ms <= 0 || doc.AboveKnee.LatencyP99Ms > 1000 {
		t.Fatalf("above-knee p99 %vms is not a bounded tail", doc.AboveKnee.LatencyP99Ms)
	}
}

// TestCommittedBenchArtifactIsCurrent regenerates BENCH_serve.json and
// compares it byte-for-byte with the committed copy, so the artifact can
// never drift from the code that claims to produce it.
func TestCommittedBenchArtifactIsCurrent(t *testing.T) {
	committed, err := os.ReadFile(filepath.Join("..", "..", "BENCH_serve.json"))
	if err != nil {
		t.Skipf("no committed BENCH_serve.json: %v", err)
	}
	bin := buildCandleserve(t)
	fresh := filepath.Join(t.TempDir(), "fresh.json")
	runCandleserve(t, bin, "-bench", "-json", fresh)
	got, err := os.ReadFile(fresh)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(committed, got) {
		t.Fatal("BENCH_serve.json is stale: regenerate with `make bench-serve`")
	}
}

type resilDoc struct {
	HedgeBudgetMs    float64 `json:"hedge_budget_ms"`
	DegradedUnhedged struct {
		Completed    int     `json:"completed"`
		LatencyP99Ms float64 `json:"latency_p99_ms"`
		Hedged       int     `json:"hedged"`
	} `json:"degraded_unhedged"`
	Hedged []struct {
		Completed         int     `json:"completed"`
		LatencyP99Ms      float64 `json:"latency_p99_ms"`
		Hedged            int     `json:"hedged"`
		HedgeWins         int     `json:"hedge_wins"`
		DuplicatedWorkPct float64 `json:"duplicated_work_pct"`
		HedgeAfterMs      float64 `json:"hedge_after_ms"`
	} `json:"hedged"`
}

// TestResilProfileIsBitIdentical runs the gray-failure resilience profile
// twice and requires byte-identical JSON, then checks the ISSUE's headline
// numbers: with one replica degraded 10x, hedging at the healthy-p95 budget
// must cut p99 at least 2x for at most 15% duplicated work, with runs on
// both sides of the budget.
func TestResilProfileIsBitIdentical(t *testing.T) {
	bin := buildCandleserve(t)
	dir := t.TempDir()
	j1 := filepath.Join(dir, "a.json")
	j2 := filepath.Join(dir, "b.json")

	runCandleserve(t, bin, "-resil", "-requests", "3000", "-json", j1)
	runCandleserve(t, bin, "-resil", "-requests", "3000", "-json", j2)

	b1, err := os.ReadFile(j1)
	if err != nil {
		t.Fatal(err)
	}
	b2, err := os.ReadFile(j2)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1, b2) {
		t.Fatalf("same seed produced different resil JSON:\n%s\n---\n%s", b1, b2)
	}

	var doc resilDoc
	if err := json.Unmarshal(b1, &doc); err != nil {
		t.Fatalf("resil JSON does not parse: %v", err)
	}
	if doc.DegradedUnhedged.Hedged != 0 {
		t.Fatalf("unhedged run hedged %d requests", doc.DegradedUnhedged.Hedged)
	}
	if len(doc.Hedged) != 4 {
		t.Fatalf("want 4 hedged runs (0.5x, 1x, 2x, 4x p95), got %d", len(doc.Hedged))
	}
	if lo, hi := doc.Hedged[0].HedgeAfterMs, doc.Hedged[len(doc.Hedged)-1].HedgeAfterMs; !(lo < doc.HedgeBudgetMs && doc.HedgeBudgetMs < hi) {
		t.Fatalf("hedged budgets [%v..%v]ms do not straddle the calibrated %vms",
			lo, hi, doc.HedgeBudgetMs)
	}
	atBudget := doc.Hedged[1]
	if atBudget.LatencyP99Ms*2 > doc.DegradedUnhedged.LatencyP99Ms {
		t.Fatalf("hedging at p95 cut p99 only %.2fms -> %.2fms (< 2x)",
			doc.DegradedUnhedged.LatencyP99Ms, atBudget.LatencyP99Ms)
	}
	if atBudget.DuplicatedWorkPct > 15 {
		t.Fatalf("%.1f%% duplicated work at the p95 budget (> 15%%)", atBudget.DuplicatedWorkPct)
	}
	if atBudget.Hedged == 0 || atBudget.HedgeWins == 0 {
		t.Fatalf("at-budget run never hedged or never won: %+v", atBudget)
	}
}

// TestCommittedResilArtifactIsCurrent regenerates BENCH_resil.json and
// compares it byte-for-byte with the committed copy.
func TestCommittedResilArtifactIsCurrent(t *testing.T) {
	committed, err := os.ReadFile(filepath.Join("..", "..", "BENCH_resil.json"))
	if err != nil {
		t.Skipf("no committed BENCH_resil.json: %v", err)
	}
	bin := buildCandleserve(t)
	fresh := filepath.Join(t.TempDir(), "fresh.json")
	runCandleserve(t, bin, "-resil", "-json", fresh)
	got, err := os.ReadFile(fresh)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(committed, got) {
		t.Fatal("BENCH_resil.json is stale: regenerate with `make bench-resil`")
	}
}

type rolloutDoc struct {
	ShadowCatch struct {
		RolloutState     string  `json:"rollout_state"`
		CanaryServed     int     `json:"canary_served"`
		ShadowMismatches int     `json:"shadow_mismatches"`
		BadVersionPct    float64 `json:"bad_version_pct"`
	} `json:"shadow_catch"`
	BadDeploy struct {
		RolloutState    string  `json:"rollout_state"`
		TimeToDetectS   float64 `json:"time_to_detect_s"`
		TimeToRollbackS float64 `json:"time_to_rollback_s"`
		BadVersionPct   float64 `json:"bad_version_pct"`
	} `json:"bad_deploy"`
	GoodDeploy struct {
		RolloutState string `json:"rollout_state"`
		Errors       int    `json:"errors"`
	} `json:"good_deploy"`
	FlashFixedSmall struct {
		SLO []struct {
			Met bool `json:"met"`
		} `json:"slo"`
	} `json:"flash_fixed_small"`
	FlashAutoscaled struct {
		SLO []struct {
			Met bool `json:"met"`
		} `json:"slo"`
		ReplicasPeak int     `json:"replicas_peak"`
		ReplicasMean float64 `json:"replicas_mean"`
		ScaleDowns   int     `json:"scale_downs"`
	} `json:"flash_autoscaled"`
}

// TestRolloutProfileIsBitIdentical runs the self-healing control-plane
// profile twice and requires byte-identical JSON, then checks the headline
// numbers: the shadow phase catches the poisoned candidate with zero live
// exposure; without shadow the rollback fires before the bad version serves
// more than 5% of traffic; the healthy candidate promotes cleanly; and the
// autoscaler holds the availability SLO the fixed minimal fleet breaches, at
// a mean fleet below the overprovisioned one.
func TestRolloutProfileIsBitIdentical(t *testing.T) {
	bin := buildCandleserve(t)
	dir := t.TempDir()
	j1 := filepath.Join(dir, "a.json")
	j2 := filepath.Join(dir, "b.json")

	runCandleserve(t, bin, "-rollout", "-requests", "3000", "-json", j1)
	runCandleserve(t, bin, "-rollout", "-requests", "3000", "-json", j2)

	b1, err := os.ReadFile(j1)
	if err != nil {
		t.Fatal(err)
	}
	b2, err := os.ReadFile(j2)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1, b2) {
		t.Fatalf("same seed produced different rollout JSON:\n%s\n---\n%s", b1, b2)
	}

	var doc rolloutDoc
	if err := json.Unmarshal(b1, &doc); err != nil {
		t.Fatalf("rollout JSON does not parse: %v", err)
	}
	sc := doc.ShadowCatch
	if sc.RolloutState != "rolled_back" || sc.CanaryServed != 0 || sc.BadVersionPct != 0 {
		t.Fatalf("shadow catch leaked live traffic to the bad version: %+v", sc)
	}
	if sc.ShadowMismatches == 0 {
		t.Fatalf("shadow phase observed no mismatches: %+v", sc)
	}
	bd := doc.BadDeploy
	if bd.RolloutState != "rolled_back" {
		t.Fatalf("bad deploy not rolled back: %+v", bd)
	}
	if bd.TimeToDetectS <= 0 || bd.TimeToDetectS > 1 || bd.TimeToRollbackS <= 0 {
		t.Fatalf("detection/rollback not bounded: %+v", bd)
	}
	if bd.BadVersionPct <= 0 || bd.BadVersionPct > 5 {
		t.Fatalf("rollback fired after the bad version served %.2f%% of traffic (want (0, 5]%%)",
			bd.BadVersionPct)
	}
	if doc.GoodDeploy.RolloutState != "promoted" || doc.GoodDeploy.Errors != 0 {
		t.Fatalf("healthy deploy did not promote cleanly: %+v", doc.GoodDeploy)
	}
	if len(doc.FlashFixedSmall.SLO) == 0 || doc.FlashFixedSmall.SLO[0].Met {
		t.Fatalf("flash crowd did not breach the fixed minimal fleet: %+v", doc.FlashFixedSmall)
	}
	as := doc.FlashAutoscaled
	if len(as.SLO) == 0 || !as.SLO[0].Met {
		t.Fatalf("autoscaled fleet breached availability: %+v", as)
	}
	if as.ReplicasPeak <= 1 || as.ScaleDowns < 1 || as.ReplicasMean >= 4 {
		t.Fatalf("autoscaler trajectory wrong (want grow, shrink, mean < overprovisioned 4): %+v", as)
	}
}

// TestCommittedRolloutArtifactIsCurrent regenerates BENCH_rollout.json and
// compares it byte-for-byte with the committed copy.
func TestCommittedRolloutArtifactIsCurrent(t *testing.T) {
	committed, err := os.ReadFile(filepath.Join("..", "..", "BENCH_rollout.json"))
	if err != nil {
		t.Skipf("no committed BENCH_rollout.json: %v", err)
	}
	bin := buildCandleserve(t)
	fresh := filepath.Join(t.TempDir(), "fresh.json")
	runCandleserve(t, bin, "-rollout", "-json", fresh)
	got, err := os.ReadFile(fresh)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(committed, got) {
		t.Fatal("BENCH_rollout.json is stale: regenerate with `make bench-rollout`")
	}
}

// TestAutoscaleFlagSmokes attaches the autoscaler to a plain simulated run
// at 3x the single-replica capacity: the fleet must grow and the trajectory
// must land in the output.
func TestAutoscaleFlagSmokes(t *testing.T) {
	bin := buildCandleserve(t)
	out := runCandleserve(t, bin,
		"-autoscale", "-requests", "4000", "-rate", "6000", "-replicas", "2")
	if !strings.Contains(out, "autoscale peak=") {
		t.Fatalf("missing autoscale trajectory line:\n%s", out)
	}
	if strings.Contains(out, "autoscale peak=1 ") {
		t.Fatalf("overload never grew the fleet:\n%s", out)
	}
	if out, err := exec.Command(bin, "-autoscale", "-live").CombinedOutput(); err == nil {
		t.Fatalf("accepted -autoscale with -live:\n%s", out)
	}
}

func TestClosedLoopMode(t *testing.T) {
	bin := buildCandleserve(t)
	out := runCandleserve(t, bin, "-mode", "closed", "-requests", "2000", "-clients", "16")
	if !strings.Contains(out, "mode=closed") {
		t.Fatalf("missing closed-mode marker:\n%s", out)
	}
	if !strings.Contains(out, "completed=2000 shed=0") {
		t.Fatalf("closed loop must complete everything without shedding:\n%s", out)
	}
}

func TestRejectsBadFlags(t *testing.T) {
	bin := buildCandleserve(t)
	if out, err := exec.Command(bin, "-mode", "sideways").CombinedOutput(); err == nil {
		t.Fatalf("accepted bad -mode:\n%s", out)
	}
	if out, err := exec.Command(bin, "-requests", "0").CombinedOutput(); err == nil {
		t.Fatalf("accepted zero -requests:\n%s", out)
	}
}

// TestLiveEngineSmokes drives the real concurrent server briefly: the
// numbers are wall-clock-dependent, so only the accounting is asserted.
func TestLiveEngineSmokes(t *testing.T) {
	bin := buildCandleserve(t)
	out := runCandleserve(t, bin,
		"-live", "-requests", "300", "-rate", "3000", "-replicas", "2")
	if !strings.Contains(out, "mode=open-live") {
		t.Fatalf("missing live-mode marker:\n%s", out)
	}
	out = runCandleserve(t, bin,
		"-live", "-mode", "closed", "-requests", "300", "-clients", "8", "-think", "100us")
	if !strings.Contains(out, "completed=300 shed=0") {
		t.Fatalf("closed live run must complete everything:\n%s", out)
	}
}

// TestSLOAndMetricsOut drives the new observability flags: -slo attaches
// burn-rate-monitored objectives to the simulated run and -metrics-out dumps
// the OpenMetrics exposition. Overload at 1.5x capacity must violate both
// objectives, fire at least one alert, and the exposition must carry the
// counters and latency histogram.
func TestSLOAndMetricsOut(t *testing.T) {
	bin := buildCandleserve(t)
	om := filepath.Join(t.TempDir(), "metrics.om")
	out := runCandleserve(t, bin,
		"-requests", "4000", "-rate", "6000",
		"-slo", "avail=0.999,p99=25ms", "-slo-window", "1s",
		"-metrics-out", om)
	for _, want := range []string{
		"slo availability", "slo latency_p99", "VIOLATED", "FIRE",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	exp, err := os.ReadFile(om)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"serve_submitted_total", "serve_shed_total",
		"serve_latency_hist_seconds_bucket", "# EOF\n",
	} {
		if !strings.Contains(string(exp), want) {
			t.Errorf("OpenMetrics dump missing %q:\n%s", want, exp)
		}
	}
}

// TestSLORejectsLive pins that the SLO/metrics flags require the simulator.
func TestSLORejectsLive(t *testing.T) {
	bin := buildCandleserve(t)
	if out, err := exec.Command(bin, "-live", "-slo", "avail=0.999").CombinedOutput(); err == nil {
		t.Fatalf("accepted -slo with -live:\n%s", out)
	}
	if out, err := exec.Command(bin, "-slo", "bogus").CombinedOutput(); err == nil {
		t.Fatalf("accepted malformed -slo spec:\n%s", out)
	}
}
