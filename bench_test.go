package repro

import (
	"testing"

	"repro/internal/comm"
	"repro/internal/experiments"
	"repro/internal/lowp"
	"repro/internal/machine"
	"repro/internal/nn"
	"repro/internal/parallel"
	"repro/internal/rng"
	"repro/internal/tensor"
)

// benchExperiment regenerates one experiment table per iteration. The table
// itself is the artifact (candlebench prints it); the benchmark exists so
// `go test -bench` re-runs every reproduction and times it.
func benchExperiment(b *testing.B, id string) {
	e := experiments.ByID(id)
	if e == nil {
		b.Fatalf("experiment %s missing", id)
	}
	for i := 0; i < b.N; i++ {
		t := e.Run(experiments.Config{Quick: true, Seed: 1})
		if t.NumRows() == 0 {
			b.Fatalf("%s produced no rows", id)
		}
	}
}

// One benchmark per experiment — the paper has no numbered tables/figures
// (keynote abstract), so these are the regeneration targets for the nine
// claim-reproductions DESIGN.md enumerates.
func BenchmarkE1Precision(b *testing.B)   { benchExperiment(b, "E1") }
func BenchmarkE2Roofline(b *testing.B)    { benchExperiment(b, "E2") }
func BenchmarkE3Scaling(b *testing.B)     { benchExperiment(b, "E3") }
func BenchmarkE4Hybrid(b *testing.B)      { benchExperiment(b, "E4") }
func BenchmarkE5Memory(b *testing.B)      { benchExperiment(b, "E5") }
func BenchmarkE6Fabric(b *testing.B)      { benchExperiment(b, "E6") }
func BenchmarkE7NVRAM(b *testing.B)       { benchExperiment(b, "E7") }
func BenchmarkE8Search(b *testing.B)      { benchExperiment(b, "E8") }
func BenchmarkE9Campaign(b *testing.B)    { benchExperiment(b, "E9") }
func BenchmarkE10Checkpoint(b *testing.B) { benchExperiment(b, "E10") }
func BenchmarkE11Serving(b *testing.B)    { benchExperiment(b, "E11") }
func BenchmarkE12Resilience(b *testing.B) { benchExperiment(b, "E12") }
func BenchmarkE13Comm(b *testing.B)       { benchExperiment(b, "E13") }
func BenchmarkE14SLO(b *testing.B)        { benchExperiment(b, "E14") }
func BenchmarkE15Kernels(b *testing.B)    { benchExperiment(b, "E15") }
func BenchmarkE16Data(b *testing.B)       { benchExperiment(b, "E16") }
func BenchmarkE17Rollout(b *testing.B)    { benchExperiment(b, "E17") }
func BenchmarkE18SearchScale(b *testing.B) { benchExperiment(b, "E18") }

// benchAblation regenerates one design-choice ablation table per iteration.
func benchAblation(b *testing.B, id string) {
	for _, e := range experiments.Ablations() {
		if e.ID != id {
			continue
		}
		for i := 0; i < b.N; i++ {
			if t := e.Run(experiments.Config{Quick: true, Seed: 1}); t.NumRows() == 0 {
				b.Fatalf("%s produced no rows", id)
			}
		}
		return
	}
	b.Fatalf("ablation %s missing", id)
}

func BenchmarkA1Allreduce(b *testing.B)       { benchAblation(b, "A1") }
func BenchmarkA2GradCompression(b *testing.B) { benchAblation(b, "A2") }
func BenchmarkA3BatchLaw(b *testing.B)        { benchAblation(b, "A3") }
func BenchmarkA4SyncVsAsync(b *testing.B)     { benchAblation(b, "A4") }
func BenchmarkA5TimeToQuality(b *testing.B)   { benchAblation(b, "A5") }

// ---- supporting micro-benchmarks ------------------------------------------

// BenchmarkTrainStepMLP measures one real forward+backward+update on a
// CANDLE-scale MLP batch — the unit of work every experiment models.
func BenchmarkTrainStepMLP(b *testing.B) {
	r := rng.New(1)
	net := nn.MLP(256, []int{128, 64}, 4, nn.ReLU, r)
	x := tensor.New(32, 256)
	x.FillRandNorm(r, 1)
	labels := make([]int, 32)
	for i := range labels {
		labels[i] = i % 4
	}
	y := nn.OneHot(labels, 4)
	cfg := nn.TrainConfig{Loss: nn.SoftmaxCELoss{}, Optimizer: nn.NewAdam(0.001)}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		nn.TrainStep(net, x, y, cfg, nil, nil)
	}
}

// BenchmarkTrainStepLowPrecision isolates the cost of precision emulation.
func BenchmarkTrainStepLowPrecision(b *testing.B) {
	for _, p := range []lowp.Precision{lowp.FP64, lowp.FP16} {
		b.Run(p.String(), func(b *testing.B) {
			r := rng.New(1)
			net := nn.MLP(256, []int{128}, 4, nn.ReLU, r)
			x := tensor.New(32, 256)
			x.FillRandNorm(r, 1)
			labels := make([]int, 32)
			y := nn.OneHot(labels, 4)
			cfg := nn.TrainConfig{Loss: nn.SoftmaxCELoss{},
				Optimizer: nn.NewAdam(0.001), Precision: p}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				nn.TrainStep(net, x, y, cfg, nil, nil)
			}
		})
	}
}

// BenchmarkDataParallelStep measures a full synchronous data-parallel epoch
// across goroutine ranks, including the ring allreduce.
func BenchmarkDataParallelStep(b *testing.B) {
	for _, p := range []int{1, 2, 4, 8} {
		b.Run(benchName("ranks", p), func(b *testing.B) {
			r := rng.New(2)
			x := tensor.New(256, 64)
			x.FillRandNorm(r, 1)
			labels := make([]int, 256)
			y := nn.OneHot(labels, 2)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				net := nn.MLP(64, []int{64}, 2, nn.ReLU, rng.New(3))
				_, err := parallel.TrainDataParallel(net, x, y, parallel.DataParallelConfig{
					Replicas: p, Algo: comm.ARRing,
					Loss:         nn.SoftmaxCELoss{},
					NewOptimizer: func() nn.Optimizer { return nn.NewSGD(0.1) },
					GlobalBatch:  64, Epochs: 1, RNG: rng.New(4),
				})
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkCollectiveModel prices the four allreduce algorithms on the
// machine model (no goroutines — pure cost-model evaluation rate).
func BenchmarkCollectiveModel(b *testing.B) {
	m := machine.GPU2017(1024)
	var sink float64
	for i := 0; i < b.N; i++ {
		for _, algo := range []comm.AllReduceAlgorithm{
			comm.ARRing, comm.ARRecursiveDoubling, comm.ARTree, comm.ARRabenseifner} {
			sink += machine.CollectiveTime(m.InterFabric, algo, 256, 1e8)
		}
	}
	_ = sink
}

func benchName(prefix string, v int) string {
	return prefix + "-" + string(rune('0'+v/10)) + string(rune('0'+v%10))
}
